// Package oracle defines the adjacency-list oracle through which every LCA
// views its input graph, together with the probe-accounting wrappers that
// the experiments use to measure probe complexity.
//
// The probe set follows the centralized-local model (Rubinfeld et al. 2011):
//
//   - Neighbor(v, i): the i-th neighbor of v, or -1 if i >= deg(v).
//   - Degree(v): deg(v). (Definable from Neighbor probes by binary search;
//     provided natively and counted separately, as in the papers.)
//   - Adjacency(u, v): the index of v in Gamma(u), or -1 if (u,v) is not an
//     edge. Note the answer carries positional information; the spanner
//     constructions' O(1) cluster-membership tests depend on it.
//
// Algorithms must interact with the input graph only through this
// interface; the harness enforces probe budgets and records statistics by
// wrapping it.
//
// # Neighborhood exploration
//
// The unit of work in every LCA here is not one cell but one neighborhood:
// a query explores a bounded recursion tree of adjacency rows (the framing
// of Reingold-Vardi's "New Techniques and Tighter Bounds for LCAs"). The
// exploration API makes that unit explicit:
//
//   - Neighbors(o, v) returns v's full adjacency row.
//   - Prefetch(o, vs...) hints that the caller is about to read cells of
//     the listed rows.
//
// Both are free-function helpers that work over any Oracle: when the
// oracle implements the optional Explorer capability they delegate to it,
// otherwise they fall back to the equivalent scalar probe loop, so
// algorithms written against the exploration API run unchanged on every
// backend. The payoff is the PrefetchOracle (prefetch.go): over a
// network-backed source with the source.BatchProber capability it turns
// one exploration into one batched round trip and serves the subsequent
// scalar probes from the primed rows — collapsing deg+1 round trips per
// neighborhood into one or two, while per-cell probe accounting (Counter,
// LimitOracle) is unchanged: budgets and probe counts charge the cells the
// algorithm reads, and round trips are measured separately (Stats.Batches,
// Stats.RoundTrips).
package oracle

import (
	"sync"

	"lca/internal/source"
	"lca/internal/trace"
)

// Oracle is the adjacency-list probe interface of the LCA model.
type Oracle interface {
	// N returns the number of vertices. Knowing n is standard in the model
	// (it parameterizes thresholds) and does not count as a probe.
	N() int
	// Degree returns deg(v).
	Degree(v int) int
	// Neighbor returns the i-th (0-indexed) neighbor of v, or -1 if i is
	// out of range.
	Neighbor(v, i int) int
	// Adjacency returns the index of v in the neighbor list of u, or -1 if
	// (u,v) is not an edge.
	Adjacency(u, v int) int
}

// New returns an oracle view of a probe source. The probe interface is the
// source interface — an in-memory *graph.Graph, an implicit generator and
// a disk-backed CSR file all answer the same four probes — so the oracle
// boundary is a semantic one: algorithms receive an Oracle, never a
// backend, and harnesses interpose the accounting wrappers below.
func New(src source.Source) Oracle { return src }

// Explorer is the optional neighborhood-exploration capability of an
// oracle: fetching one full adjacency row, and hinting that several rows
// are about to be read. Answers must agree cell-for-cell with the scalar
// probes — Neighbors(v)[i] == Neighbor(v, i) and len == Degree(v) — so
// exploration never changes what an algorithm computes, only how the
// backend is asked. Use the package-level Neighbors and Prefetch helpers
// rather than asserting the interface directly: they supply the scalar
// fallback on oracles without the capability.
type Explorer interface {
	// Neighbors returns v's full adjacency row. The slice may be shared
	// with the oracle's cache; callers must not modify it.
	Neighbors(v int) []int
	// Prefetch hints that the caller is about to read cells of the listed
	// rows. It is free at the probe-accounting level (only cells actually
	// read are charged) and may fetch speculatively.
	Prefetch(vs ...int)
}

// Neighbors returns v's full adjacency row through o: the Explorer
// capability when o has it, otherwise the equivalent scalar loop (one
// Degree probe plus one Neighbor probe per cell, stopping at the first
// out-of-range answer).
func Neighbors(o Oracle, v int) []int {
	if e, ok := o.(Explorer); ok {
		return e.Neighbors(v)
	}
	deg := o.Degree(v)
	row := make([]int, 0, deg)
	for i := 0; i < deg; i++ {
		w := o.Neighbor(v, i)
		if w < 0 {
			break
		}
		row = append(row, w)
	}
	return row
}

// Prefetch hints to o that the listed adjacency rows are about to be read.
// On oracles without the Explorer capability it is a no-op — the hint only
// ever changes how probes are transported, never their answers or their
// per-cell accounting. A nil oracle is tolerated (also a no-op) so shared
// helpers can hint opportunistically.
func Prefetch(o Oracle, vs ...int) {
	if o == nil || len(vs) == 0 {
		return
	}
	if e, ok := o.(Explorer); ok {
		e.Prefetch(vs...)
	}
}

// Stats is a snapshot of probe counts by type, plus the batch/round-trip
// accounting of the exploration API. Total — the theory's probe-complexity
// measure — counts cells only; Batches and RoundTrips price the transport
// and are reported separately.
type Stats struct {
	Neighbor  uint64
	Degree    uint64
	Adjacency uint64
	// Batches counts neighborhood-exploration operations issued through
	// the oracle (one per Neighbors call and per non-empty Prefetch hint).
	Batches uint64
	// RoundTrips counts backend network round trips consumed, read through
	// the source.RoundTripCounter capability when the wrapped oracle chain
	// exposes one; 0 on purely local chains.
	RoundTrips uint64
	// Failovers counts probe operations a sharded backend served away from
	// their rendezvous replica (dead or erroring shards), read through the
	// source.FailoverCounter capability; 0 on non-sharded chains.
	Failovers uint64
	// Hedges counts hedged requests a sharded backend fired because the
	// first-ranked replica exceeded the hedge delay.
	Hedges uint64
	// AttestFailures counts probe answers that failed verification against
	// a pinned graph commitment — each one a detected Byzantine answer the
	// backend discarded and re-routed — read through the
	// source.AttestCounter capability; 0 on unattested chains.
	AttestFailures uint64
	// ProofBytes counts the Merkle proof bytes transported alongside
	// attested probe answers (the verification overhead's wire cost).
	ProofBytes uint64
	// RemainderTrips counts the extra batches a prefetching tier issued
	// because a row's degree exceeded its speculative width (0 when no
	// PrefetchOracle is in the chain, or when the backend answers full
	// rows natively).
	RemainderTrips uint64
	// FetchWidth is the prefetching tier's current speculative width — a
	// gauge, not a counter; with the learned-width estimator it moves as
	// observed degrees accumulate. 0 when no PrefetchOracle is in the chain.
	FetchWidth uint64
	// PageTouches counts backend loads that landed on a different page than
	// the load before them, read through the source.LocalityReporter
	// capability (the mmap CSR backend); 0 on chains without it.
	PageTouches uint64
	// LocalHits counts backend loads that stayed on the previous load's
	// page — the near-free majority when probes exhibit the locality the
	// hot path is built for.
	LocalHits uint64
}

// Total returns the total cell-probe count (the model's complexity
// measure; batches and round trips are transport accounting, not probes).
func (s Stats) Total() uint64 { return s.Neighbor + s.Degree + s.Adjacency }

// Sub returns s - t componentwise, for before/after deltas.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Neighbor:       s.Neighbor - t.Neighbor,
		Degree:         s.Degree - t.Degree,
		Adjacency:      s.Adjacency - t.Adjacency,
		Batches:        s.Batches - t.Batches,
		RoundTrips:     s.RoundTrips - t.RoundTrips,
		Failovers:      s.Failovers - t.Failovers,
		Hedges:         s.Hedges - t.Hedges,
		AttestFailures: s.AttestFailures - t.AttestFailures,
		ProofBytes:     s.ProofBytes - t.ProofBytes,
		// RemainderTrips is a counter like the rest; FetchWidth is a gauge,
		// so the delta keeps the newer snapshot's value.
		RemainderTrips: s.RemainderTrips - t.RemainderTrips,
		FetchWidth:     s.FetchWidth,
		PageTouches:    s.PageTouches - t.PageTouches,
		LocalHits:      s.LocalHits - t.LocalHits,
	}
}

// PrefetchReporter is the optional capability of a prefetching oracle tier
// to report its speculative width and remainder-trip count. PrefetchOracle
// implements it; the accounting wrappers forward it so a Counter stacked
// anywhere above the tier can include both in its Stats.
type PrefetchReporter interface {
	// FetchWidth returns the current speculative width (a gauge).
	FetchWidth() int
	// RemainderTrips returns the cumulative count of remainder batches
	// issued because a row exceeded the speculative width.
	RemainderTrips() uint64
}

// Counter wraps an Oracle and counts probes by type. It is not safe for
// concurrent use; harnesses that parallelize give each worker its own
// Counter (LCA instances are cheap and deterministic to rebuild).
//
// Counter is exploration-aware: Neighbors charges exactly what the scalar
// loop would (one Degree plus one Neighbor per cell) and Prefetch charges
// nothing per cell — both count one batch operation — so probe complexity
// is measured identically however the algorithm expresses its scans. When
// the wrapped chain exposes the source.RoundTripCounter capability, Stats
// additionally reports the network round trips consumed since
// construction (or the last Reset).
type Counter struct {
	inner Oracle
	stats Stats
	rt    source.RoundTripCounter // non-nil when the chain reports round trips
	rt0   uint64                  // round-trip count at construction/Reset
	fo    source.FailoverCounter  // non-nil when the chain reports failovers/hedges
	fo0   uint64                  // failover count at construction/Reset
	he0   uint64                  // hedge count at construction/Reset
	ac    source.AttestCounter    // non-nil when the chain verifies attested probes
	af0   uint64                  // attestation-failure count at construction/Reset
	pb0   uint64                  // proof-byte count at construction/Reset
	pr    PrefetchReporter        // non-nil when the chain has a prefetch tier
	rem0  uint64                  // remainder-trip count at construction/Reset
	lr    source.LocalityReporter // non-nil when the chain reports page locality
	pt0   uint64                  // page-touch count at construction/Reset
	lh0   uint64                  // local-hit count at construction/Reset
}

var (
	_ Oracle   = (*Counter)(nil)
	_ Explorer = (*Counter)(nil)
)

// NewCounter wraps inner with probe accounting.
func NewCounter(inner Oracle) *Counter {
	c := &Counter{inner: inner}
	if rt, ok := inner.(source.RoundTripCounter); ok {
		c.rt = rt
		c.rt0 = rt.RoundTrips()
	}
	if fo, ok := inner.(source.FailoverCounter); ok {
		c.fo = fo
		c.fo0, c.he0 = fo.Failovers(), fo.Hedges()
	}
	if ac, ok := inner.(source.AttestCounter); ok {
		c.ac = ac
		c.af0, c.pb0 = ac.AttestFailures(), ac.ProofBytes()
	}
	if pr, ok := inner.(PrefetchReporter); ok {
		c.pr = pr
		c.rem0 = pr.RemainderTrips()
	}
	if lr, ok := inner.(source.LocalityReporter); ok {
		c.lr = lr
		c.pt0, c.lh0 = lr.PageTouches(), lr.LocalHits()
	}
	return c
}

// N implements Oracle (not counted; n is public knowledge in the model).
func (c *Counter) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *Counter) Degree(v int) int {
	c.stats.Degree++
	return c.inner.Degree(v)
}

// Neighbor implements Oracle.
func (c *Counter) Neighbor(v, i int) int {
	c.stats.Neighbor++
	return c.inner.Neighbor(v, i)
}

// Adjacency implements Oracle.
func (c *Counter) Adjacency(u, v int) int {
	c.stats.Adjacency++
	return c.inner.Adjacency(u, v)
}

// Neighbors implements Explorer, charging one Degree probe plus one
// Neighbor probe per returned cell — exactly the scalar loop's account.
func (c *Counter) Neighbors(v int) []int {
	row := Neighbors(c.inner, v)
	c.stats.Degree++
	c.stats.Neighbor += uint64(len(row))
	c.stats.Batches++
	return row
}

// Prefetch implements Explorer; hints are free at the cell level.
func (c *Counter) Prefetch(vs ...int) {
	if len(vs) == 0 {
		return
	}
	c.stats.Batches++
	Prefetch(c.inner, vs...)
}

// RoundTrips forwards the chain's round-trip count (0 when local), so
// stacked wrappers keep the capability visible.
func (c *Counter) RoundTrips() uint64 {
	if c.rt != nil {
		return c.rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the chain's failover count (0 when non-sharded), so
// stacked wrappers keep the capability visible.
func (c *Counter) Failovers() uint64 {
	if c.fo != nil {
		return c.fo.Failovers()
	}
	return 0
}

// Hedges forwards the chain's hedge count (0 when non-sharded).
func (c *Counter) Hedges() uint64 {
	if c.fo != nil {
		return c.fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the chain's attestation-failure count (0 when
// unattested), so stacked wrappers keep the capability visible.
func (c *Counter) AttestFailures() uint64 {
	if c.ac != nil {
		return c.ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the chain's transported-proof-byte count (0 when
// unattested).
func (c *Counter) ProofBytes() uint64 {
	if c.ac != nil {
		return c.ac.ProofBytes()
	}
	return 0
}

// FetchWidth forwards the chain's speculative prefetch width (0 when no
// prefetch tier is present), so stacked wrappers keep the capability
// visible.
func (c *Counter) FetchWidth() int {
	if c.pr != nil {
		return c.pr.FetchWidth()
	}
	return 0
}

// RemainderTrips forwards the chain's remainder-trip count (0 when no
// prefetch tier is present).
func (c *Counter) RemainderTrips() uint64 {
	if c.pr != nil {
		return c.pr.RemainderTrips()
	}
	return 0
}

// PageTouches forwards the chain's page-touch count (0 when no
// page-mapped backend is underneath), so stacked wrappers keep the
// capability visible.
func (c *Counter) PageTouches() uint64 {
	if c.lr != nil {
		return c.lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the chain's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (c *Counter) LocalHits() uint64 {
	if c.lr != nil {
		return c.lr.LocalHits()
	}
	return 0
}

// Stats returns the probe counts so far.
func (c *Counter) Stats() Stats {
	s := c.stats
	if c.rt != nil {
		s.RoundTrips = c.rt.RoundTrips() - c.rt0
	}
	if c.fo != nil {
		s.Failovers = c.fo.Failovers() - c.fo0
		s.Hedges = c.fo.Hedges() - c.he0
	}
	if c.ac != nil {
		s.AttestFailures = c.ac.AttestFailures() - c.af0
		s.ProofBytes = c.ac.ProofBytes() - c.pb0
	}
	if c.pr != nil {
		s.RemainderTrips = c.pr.RemainderTrips() - c.rem0
		s.FetchWidth = uint64(c.pr.FetchWidth())
	}
	if c.lr != nil {
		s.PageTouches = c.lr.PageTouches() - c.pt0
		s.LocalHits = c.lr.LocalHits() - c.lh0
	}
	return s
}

// Reset zeroes the counters.
func (c *Counter) Reset() {
	c.stats = Stats{}
	if c.rt != nil {
		c.rt0 = c.rt.RoundTrips()
	}
	if c.fo != nil {
		c.fo0, c.he0 = c.fo.Failovers(), c.fo.Hedges()
	}
	if c.ac != nil {
		c.af0, c.pb0 = c.ac.AttestFailures(), c.ac.ProofBytes()
	}
	if c.pr != nil {
		c.rem0 = c.pr.RemainderTrips()
	}
	if c.lr != nil {
		c.pt0, c.lh0 = c.lr.PageTouches(), c.lr.LocalHits()
	}
}

// ProbeKind identifies a probe type in a recorded trace.
type ProbeKind uint8

// Probe kinds.
const (
	KindNeighbor ProbeKind = iota
	KindDegree
	KindAdjacency
)

// Record is one recorded probe with its answer.
type Record struct {
	Kind   ProbeKind
	A, B   int // Neighbor: (v, i); Degree: (v, 0); Adjacency: (u, v)
	Answer int
}

// Recorder wraps an Oracle and records the full probe/answer trace, used by
// the lower-bound experiments and for debugging locality violations.
type Recorder struct {
	inner Oracle
	trace []Record
}

var _ Oracle = (*Recorder)(nil)

// NewRecorder wraps inner with trace recording.
func NewRecorder(inner Oracle) *Recorder { return &Recorder{inner: inner} }

// N implements Oracle.
func (r *Recorder) N() int { return r.inner.N() }

// Degree implements Oracle.
func (r *Recorder) Degree(v int) int {
	ans := r.inner.Degree(v)
	r.trace = append(r.trace, Record{Kind: KindDegree, A: v, Answer: ans})
	return ans
}

// Neighbor implements Oracle.
func (r *Recorder) Neighbor(v, i int) int {
	ans := r.inner.Neighbor(v, i)
	r.trace = append(r.trace, Record{Kind: KindNeighbor, A: v, B: i, Answer: ans})
	return ans
}

// Adjacency implements Oracle.
func (r *Recorder) Adjacency(u, v int) int {
	ans := r.inner.Adjacency(u, v)
	r.trace = append(r.trace, Record{Kind: KindAdjacency, A: u, B: v, Answer: ans})
	return ans
}

// Neighbors implements Explorer, recording the same trace the scalar loop
// would (one Degree record plus one Neighbor record per cell).
func (r *Recorder) Neighbors(v int) []int {
	row := Neighbors(r.inner, v)
	r.trace = append(r.trace, Record{Kind: KindDegree, A: v, Answer: len(row)})
	for i, w := range row {
		r.trace = append(r.trace, Record{Kind: KindNeighbor, A: v, B: i, Answer: w})
	}
	return row
}

// Prefetch implements Explorer; hints leave no trace (they read nothing).
func (r *Recorder) Prefetch(vs ...int) { Prefetch(r.inner, vs...) }

// Trace returns the recorded probes. The slice is shared; callers must not
// modify it.
func (r *Recorder) Trace() []Record { return r.trace }

// Reset clears the trace.
func (r *Recorder) Reset() { r.trace = r.trace[:0] }

// CachingOracle wraps an Oracle and memoizes answers, so repeated probes of
// the same cell are answered locally. In the LCA model repeated probes are
// usually counted once (the algorithm could have cached them itself); the
// experiments report both raw and deduplicated counts by stacking Counter
// outside and inside a CachingOracle.
//
// CachingOracle is safe for concurrent use when its inner oracle is (every
// source backend is), so one instance can be shared across parallel
// assembly workers — probes one worker pays for answer every worker's
// repeats. Concurrent misses on the same cell may probe the inner oracle
// more than once; determinism makes the answers identical, so the race is
// benign and only costs a duplicate probe.
type CachingOracle struct {
	inner     Oracle
	degrees   sync.Map // int -> int
	neighbors sync.Map // uint64 (v,i) -> int
	adjacency sync.Map // uint64 (u,v) -> int
	// tr, when non-nil, records cache-hit events on fully-memoized
	// Neighbors assemblies (tracing.go).
	tr *trace.Tracer
}

var _ Oracle = (*CachingOracle)(nil)

// NewCaching wraps inner with memoization.
func NewCaching(inner Oracle) *CachingOracle {
	return &CachingOracle{inner: inner}
}

// cacheKey packs a probe's two operands into one map key (operands are
// vertex IDs or list indices, both well under 2^32).
func cacheKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// N implements Oracle.
func (c *CachingOracle) N() int { return c.inner.N() }

// Degree implements Oracle.
func (c *CachingOracle) Degree(v int) int {
	if d, ok := c.degrees.Load(v); ok {
		return d.(int)
	}
	d := c.inner.Degree(v)
	c.degrees.Store(v, d)
	return d
}

// Neighbor implements Oracle.
func (c *CachingOracle) Neighbor(v, i int) int {
	k := cacheKey(v, i)
	if w, ok := c.neighbors.Load(k); ok {
		return w.(int)
	}
	w := c.inner.Neighbor(v, i)
	c.neighbors.Store(k, w)
	// A Neighbor answer also pins down one Adjacency answer for free.
	if w >= 0 {
		c.adjacency.Store(cacheKey(v, w), i)
	}
	return w
}

// Adjacency implements Oracle.
func (c *CachingOracle) Adjacency(u, v int) int {
	k := cacheKey(u, v)
	if i, ok := c.adjacency.Load(k); ok {
		return i.(int)
	}
	i := c.inner.Adjacency(u, v)
	c.adjacency.Store(k, i)
	return i
}

// Neighbors implements Explorer: a fully cached row is assembled locally,
// anything else is fetched through the inner oracle and memoized cell by
// cell (priming the Adjacency cache on the way, like Neighbor does).
func (c *CachingOracle) Neighbors(v int) []int {
	if d, ok := c.degrees.Load(v); ok {
		deg := d.(int)
		row := make([]int, 0, deg)
		for i := 0; i < deg; i++ {
			w, ok := c.neighbors.Load(cacheKey(v, i))
			if !ok {
				row = nil
				break
			}
			row = append(row, w.(int))
		}
		if row != nil || deg == 0 {
			if tr := c.tr; tr != nil {
				tr.Event("oracle:neighbors", v, "cache-hit")
			}
			return row
		}
	}
	row := Neighbors(c.inner, v)
	c.degrees.Store(v, len(row))
	for i, w := range row {
		c.neighbors.Store(cacheKey(v, i), w)
		if w >= 0 {
			c.adjacency.Store(cacheKey(v, w), i)
		}
	}
	return row
}

// Prefetch implements Explorer, forwarding the hint so a prefetching inner
// oracle can prime its rows; the memo itself fills only from reads.
func (c *CachingOracle) Prefetch(vs ...int) { Prefetch(c.inner, vs...) }

// RoundTrips forwards the chain's round-trip count (0 when local), so a
// Counter stacked above a shared caching tier — the parallel label
// assembly's chain — still reports the network cost underneath.
func (c *CachingOracle) RoundTrips() uint64 {
	if rt, ok := c.inner.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the chain's failover count (0 when non-sharded).
func (c *CachingOracle) Failovers() uint64 {
	if fo, ok := c.inner.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the chain's hedge count (0 when non-sharded).
func (c *CachingOracle) Hedges() uint64 {
	if fo, ok := c.inner.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the chain's attestation-failure count (0 when
// unattested).
func (c *CachingOracle) AttestFailures() uint64 {
	if ac, ok := c.inner.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the chain's transported-proof-byte count (0 when
// unattested).
func (c *CachingOracle) ProofBytes() uint64 {
	if ac, ok := c.inner.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// FetchWidth forwards the chain's speculative prefetch width (0 when no
// prefetch tier is underneath).
func (c *CachingOracle) FetchWidth() int {
	if pr, ok := c.inner.(PrefetchReporter); ok {
		return pr.FetchWidth()
	}
	return 0
}

// RemainderTrips forwards the chain's remainder-trip count (0 when no
// prefetch tier is underneath).
func (c *CachingOracle) RemainderTrips() uint64 {
	if pr, ok := c.inner.(PrefetchReporter); ok {
		return pr.RemainderTrips()
	}
	return 0
}

// PageTouches forwards the chain's page-touch count (0 when no
// page-mapped backend is underneath).
func (c *CachingOracle) PageTouches() uint64 {
	if lr, ok := c.inner.(source.LocalityReporter); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the chain's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (c *CachingOracle) LocalHits() uint64 {
	if lr, ok := c.inner.(source.LocalityReporter); ok {
		return lr.LocalHits()
	}
	return 0
}
