package oracle

// Probe budget enforcement. The theory states per-query probe bounds; the
// LimitOracle turns them into a hard runtime contract so tests and
// deployments can prove — not just measure — that an algorithm stays
// local.

import "fmt"

// ErrBudgetExceeded is the panic value raised by LimitOracle when a probe
// would exceed the budget. It is a typed value so harnesses can recover it
// selectively.
type ErrBudgetExceeded struct {
	Budget uint64
}

// Error implements the error interface.
func (e ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("oracle: probe budget %d exceeded", e.Budget)
}

// LimitOracle wraps an Oracle and panics with ErrBudgetExceeded once more
// than Budget probes have been issued since construction or the last
// Reset. Not safe for concurrent use.
type LimitOracle struct {
	inner  Oracle
	budget uint64
	used   uint64
}

var _ Oracle = (*LimitOracle)(nil)

// NewLimit wraps inner with a hard probe budget.
func NewLimit(inner Oracle, budget uint64) *LimitOracle {
	return &LimitOracle{inner: inner, budget: budget}
}

// Used returns the number of probes spent so far.
func (l *LimitOracle) Used() uint64 { return l.used }

// Reset restarts the budget window.
func (l *LimitOracle) Reset() { l.used = 0 }

func (l *LimitOracle) spend() {
	if l.used >= l.budget {
		panic(ErrBudgetExceeded{Budget: l.budget})
	}
	l.used++
}

// N implements Oracle (free, as everywhere in the model).
func (l *LimitOracle) N() int { return l.inner.N() }

// Degree implements Oracle.
func (l *LimitOracle) Degree(v int) int {
	l.spend()
	return l.inner.Degree(v)
}

// Neighbor implements Oracle.
func (l *LimitOracle) Neighbor(v, i int) int {
	l.spend()
	return l.inner.Neighbor(v, i)
}

// Adjacency implements Oracle.
func (l *LimitOracle) Adjacency(u, v int) int {
	l.spend()
	return l.inner.Adjacency(u, v)
}

// WithinBudget runs fn and reports whether it completed without exhausting
// the budget; the budget window is reset first. Other panics propagate.
func (l *LimitOracle) WithinBudget(fn func()) (ok bool) {
	l.Reset()
	defer func() {
		if r := recover(); r != nil {
			if _, isBudget := r.(ErrBudgetExceeded); isBudget {
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}
