package oracle

// Probe budget enforcement. The theory states per-query probe bounds; the
// LimitOracle turns them into a hard runtime contract so tests and
// deployments can prove — not just measure — that an algorithm stays
// local.

import (
	"fmt"

	"lca/internal/source"
	"lca/internal/trace"
)

// ErrBudgetExceeded is the panic value raised by LimitOracle when a probe
// would exceed the budget. It is a typed value so harnesses can recover it
// selectively.
type ErrBudgetExceeded struct {
	Budget uint64
}

// Error implements the error interface.
func (e ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("oracle: probe budget %d exceeded", e.Budget)
}

// LimitOracle wraps an Oracle and panics with ErrBudgetExceeded once more
// than Budget probes have been issued since construction or the last
// Reset. Not safe for concurrent use.
//
// The budget is charged per cell, exploration included: Neighbors spends
// one probe for the degree plus one per returned cell, and Prefetch hints
// spend nothing — a backend batching rows into fewer round trips does not
// loosen the theory's probe bound, and round trips are accounted
// separately (Stats.RoundTrips).
type LimitOracle struct {
	inner  Oracle
	budget uint64
	used   uint64
	// tr, when non-nil, records a budget-exhausted event just before the
	// ErrBudgetExceeded panic (tracing.go).
	tr *trace.Tracer
}

var (
	_ Oracle   = (*LimitOracle)(nil)
	_ Explorer = (*LimitOracle)(nil)
)

// NewLimit wraps inner with a hard probe budget.
func NewLimit(inner Oracle, budget uint64) *LimitOracle {
	return &LimitOracle{inner: inner, budget: budget}
}

// Used returns the number of probes spent so far.
func (l *LimitOracle) Used() uint64 { return l.used }

// Reset restarts the budget window.
func (l *LimitOracle) Reset() { l.used = 0 }

func (l *LimitOracle) spend() {
	if l.used >= l.budget {
		if tr := l.tr; tr != nil {
			tr.Event("oracle:budget", -1, "budget-exhausted")
		}
		panic(ErrBudgetExceeded{Budget: l.budget})
	}
	l.used++
}

// N implements Oracle (free, as everywhere in the model).
func (l *LimitOracle) N() int { return l.inner.N() }

// Degree implements Oracle.
func (l *LimitOracle) Degree(v int) int {
	l.spend()
	return l.inner.Degree(v)
}

// Neighbor implements Oracle.
func (l *LimitOracle) Neighbor(v, i int) int {
	l.spend()
	return l.inner.Neighbor(v, i)
}

// Adjacency implements Oracle.
func (l *LimitOracle) Adjacency(u, v int) int {
	l.spend()
	return l.inner.Adjacency(u, v)
}

// Neighbors implements Explorer, spending one probe for the degree plus
// one per cell of the row — the scalar loop's exact account. Over a
// plain backend the loop spends before each cell is probed, so the
// backend never serves a probe past the budget — the strict contract.
// Over an exploring inner oracle the row arrives as one speculative
// batch (exactly what a free Prefetch hint would fetch) and the per-cell
// charges land as the cells are accounted: the budget panic still fires
// before any answer beyond it reaches the caller's logic, while the
// transport-level overshoot is bounded by the one row — the same
// speculation Prefetch is documented to perform.
func (l *LimitOracle) Neighbors(v int) []int {
	e, ok := l.inner.(Explorer)
	if !ok {
		l.spend()
		deg := l.inner.Degree(v)
		row := make([]int, 0, deg)
		for i := 0; i < deg; i++ {
			l.spend()
			w := l.inner.Neighbor(v, i)
			if w < 0 {
				break
			}
			row = append(row, w)
		}
		return row
	}
	l.spend()
	row := e.Neighbors(v)
	for range row {
		l.spend()
	}
	return row
}

// Prefetch implements Explorer; hints are free — only cells the algorithm
// actually reads count against the budget.
func (l *LimitOracle) Prefetch(vs ...int) { Prefetch(l.inner, vs...) }

// RoundTrips forwards the chain's round-trip count (0 when local), keeping
// the source.RoundTripCounter capability visible through the budget
// wrapper.
func (l *LimitOracle) RoundTrips() uint64 {
	if rt, ok := l.inner.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the chain's failover count (0 when non-sharded),
// keeping the source.FailoverCounter capability visible through the
// budget wrapper.
func (l *LimitOracle) Failovers() uint64 {
	if fo, ok := l.inner.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the chain's hedge count (0 when non-sharded).
func (l *LimitOracle) Hedges() uint64 {
	if fo, ok := l.inner.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the chain's attestation-failure count (0 when
// unattested).
func (l *LimitOracle) AttestFailures() uint64 {
	if ac, ok := l.inner.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the chain's transported-proof-byte count (0 when
// unattested).
func (l *LimitOracle) ProofBytes() uint64 {
	if ac, ok := l.inner.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// FetchWidth forwards the chain's speculative prefetch width (0 when no
// prefetch tier is underneath).
func (l *LimitOracle) FetchWidth() int {
	if pr, ok := l.inner.(PrefetchReporter); ok {
		return pr.FetchWidth()
	}
	return 0
}

// RemainderTrips forwards the chain's remainder-trip count (0 when no
// prefetch tier is underneath).
func (l *LimitOracle) RemainderTrips() uint64 {
	if pr, ok := l.inner.(PrefetchReporter); ok {
		return pr.RemainderTrips()
	}
	return 0
}

// PageTouches forwards the chain's page-touch count (0 when no
// page-mapped backend is underneath).
func (l *LimitOracle) PageTouches() uint64 {
	if lr, ok := l.inner.(source.LocalityReporter); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the chain's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (l *LimitOracle) LocalHits() uint64 {
	if lr, ok := l.inner.(source.LocalityReporter); ok {
		return lr.LocalHits()
	}
	return 0
}

// ErrTripBudgetExceeded is the panic value raised by the round-trip
// limiter once the backend has consumed more than Budget network round
// trips for the wrapped chain. Typed like ErrBudgetExceeded so harnesses
// and servers can recover it selectively.
type ErrTripBudgetExceeded struct {
	Budget uint64
}

// Error implements the error interface.
func (e ErrTripBudgetExceeded) Error() string {
	return fmt.Sprintf("oracle: round-trip budget %d exceeded", e.Budget)
}

// NewLimitTrips wraps inner with a hard network round-trip budget: once
// the chain's source.RoundTripCounter has advanced more than budget trips
// past its value at construction, the next oracle operation panics with
// ErrTripBudgetExceeded. Round trips are consumed inside the backend, so
// the check runs after each operation — the overshoot is bounded by one
// operation's trips (one batch at most), and no answer past the budget
// ever reaches the caller's logic. Chains without the capability (local
// backends) have nothing to bound and are returned unchanged.
func NewLimitTrips(inner Oracle, budget uint64) Oracle {
	rt, ok := inner.(source.RoundTripCounter)
	if !ok {
		return inner
	}
	return &limitTripsOracle{inner: inner, rt: rt, budget: budget, rt0: rt.RoundTrips()}
}

type limitTripsOracle struct {
	inner  Oracle
	rt     source.RoundTripCounter
	budget uint64
	rt0    uint64
	// tr, when non-nil, records a trip-budget-exhausted event just before
	// the ErrTripBudgetExceeded panic (tracing.go).
	tr *trace.Tracer
}

var (
	_ Oracle   = (*limitTripsOracle)(nil)
	_ Explorer = (*limitTripsOracle)(nil)
)

func (l *limitTripsOracle) check() {
	if l.rt.RoundTrips()-l.rt0 > l.budget {
		if tr := l.tr; tr != nil {
			tr.Event("oracle:budget", -1, "trip-budget-exhausted")
		}
		panic(ErrTripBudgetExceeded{Budget: l.budget})
	}
}

// N implements Oracle (free, no transport).
func (l *limitTripsOracle) N() int { return l.inner.N() }

// Degree implements Oracle.
func (l *limitTripsOracle) Degree(v int) int {
	d := l.inner.Degree(v)
	l.check()
	return d
}

// Neighbor implements Oracle.
func (l *limitTripsOracle) Neighbor(v, i int) int {
	w := l.inner.Neighbor(v, i)
	l.check()
	return w
}

// Adjacency implements Oracle.
func (l *limitTripsOracle) Adjacency(u, v int) int {
	i := l.inner.Adjacency(u, v)
	l.check()
	return i
}

// Neighbors implements Explorer.
func (l *limitTripsOracle) Neighbors(v int) []int {
	row := Neighbors(l.inner, v)
	l.check()
	return row
}

// Prefetch implements Explorer; speculative fetches consume round trips,
// so hints are checked too — a budget-capped tenant cannot smuggle
// unbounded transport through free hints.
func (l *limitTripsOracle) Prefetch(vs ...int) {
	Prefetch(l.inner, vs...)
	l.check()
}

// RoundTrips forwards the chain's round-trip count, keeping the
// capability visible through the wrapper.
func (l *limitTripsOracle) RoundTrips() uint64 { return l.rt.RoundTrips() }

// Failovers forwards the chain's failover count (0 when non-sharded).
func (l *limitTripsOracle) Failovers() uint64 {
	if fo, ok := l.inner.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the chain's hedge count (0 when non-sharded).
func (l *limitTripsOracle) Hedges() uint64 {
	if fo, ok := l.inner.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the chain's attestation-failure count (0 when
// unattested).
func (l *limitTripsOracle) AttestFailures() uint64 {
	if ac, ok := l.inner.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the chain's transported-proof-byte count (0 when
// unattested).
func (l *limitTripsOracle) ProofBytes() uint64 {
	if ac, ok := l.inner.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// FetchWidth forwards the chain's speculative prefetch width (0 when no
// prefetch tier is underneath).
func (l *limitTripsOracle) FetchWidth() int {
	if pr, ok := l.inner.(PrefetchReporter); ok {
		return pr.FetchWidth()
	}
	return 0
}

// RemainderTrips forwards the chain's remainder-trip count (0 when no
// prefetch tier is underneath).
func (l *limitTripsOracle) RemainderTrips() uint64 {
	if pr, ok := l.inner.(PrefetchReporter); ok {
		return pr.RemainderTrips()
	}
	return 0
}

// PageTouches forwards the chain's page-touch count (0 when no
// page-mapped backend is underneath).
func (l *limitTripsOracle) PageTouches() uint64 {
	if lr, ok := l.inner.(source.LocalityReporter); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the chain's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (l *limitTripsOracle) LocalHits() uint64 {
	if lr, ok := l.inner.(source.LocalityReporter); ok {
		return lr.LocalHits()
	}
	return 0
}

// WithinBudget runs fn and reports whether it completed without exhausting
// the budget; the budget window is reset first. Other panics propagate.
func (l *LimitOracle) WithinBudget(fn func()) (ok bool) {
	l.Reset()
	defer func() {
		if r := recover(); r != nil {
			if _, isBudget := r.(ErrBudgetExceeded); isBudget {
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}
