package oracle

// The tiered row-cache layer of the hot local path. A query in the
// space-efficient LCA model explores polylog-many adjacency rows, so a
// small fixed cache hierarchy suffices to make repeat probes free:
//
//	L1 — a per-instance row store: an open-addressed vertex->row table
//	     whose cells come from a bump arena, so steady-state probes
//	     allocate nothing. Row slices escape to callers (Neighbors) and
//	     are iterated while nested queries run, so live cells are NEVER
//	     overwritten: on overflow the arena abandons its block (the GC
//	     keeps escaped slices alive) instead of recycling it.
//	L2 — a shared bounded RowCache with pluggable eviction (LRU or
//	     clock). Its cell storage is recycled through degree-indexed
//	     (power-of-two size class) free lists, which is safe because L2
//	     cells never escape: readers copy rows out into their own L1
//	     arena under the cache lock.
//
// TieredOracle stacks the two over any source. It fetches whole rows on
// a miss — the same speculative stance as PrefetchOracle: probe budgets
// and Counter charge the cells the algorithm reads, and the transport
// underneath reads whole rows because locally (mmap CSR, implicit
// families) a row costs barely more than a cell.

import (
	"math/bits"
	"sync"

	"lca/internal/source"
)

// rowArena is a bump allocator for adjacency-row cells. Allocations are
// sub-slices of one block; when the block runs out it is abandoned and a
// fresh one allocated — escaped row slices stay valid (the GC holds the
// old block), and the steady-state cost is zero allocations per row.
type rowArena struct {
	block []int
	off   int
}

// rowArenaBlock is the arena block size in cells (512KiB of int64).
// Polylog rows are tiny, so one block serves tens of thousands of rows
// between abandonments.
const rowArenaBlock = 1 << 16

// alloc returns a full-capacity slice of n cells. The three-index
// sub-slice keeps an append past n from silently clobbering a
// neighboring row.
func (a *rowArena) alloc(n int) []int {
	if a.off+n > len(a.block) {
		a.block = make([]int, max(rowArenaBlock, n))
		a.off = 0
	}
	s := a.block[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// abandon drops the current block. Escaped slices stay valid; the next
// alloc starts a fresh block.
func (a *rowArena) abandon() {
	a.block = nil
	a.off = 0
}

// rowStore is an insert-only open-addressed vertex->row table: slice
// headers are stored by value, so lookups and inserts allocate nothing
// (the table itself grows geometrically, amortized). reset clears every
// entry and abandons the arena — the overflow stance documented above.
type rowStore struct {
	keys  []int // -1 marks an empty slot
	rows  [][]int
	count int
	limit int // rows held before reset
	arena rowArena
}

// rowStoreSeed is the initial table size; it doubles on load factor 1/2.
const rowStoreSeed = 1 << 10

func newRowStore(limit int) rowStore {
	s := rowStore{limit: limit}
	s.init(rowStoreSeed)
	return s
}

func (s *rowStore) init(size int) {
	s.keys = make([]int, size)
	s.rows = make([][]int, size)
	for i := range s.keys {
		s.keys[i] = -1
	}
	s.count = 0
}

// slot is Fibonacci hashing into the power-of-two table.
func (s *rowStore) slot(v int) int {
	return int((uint64(v) * 0x9E3779B97F4A7C15) >> (64 - uint(bits.Len(uint(len(s.keys)-1)))))
}

func (s *rowStore) get(v int) ([]int, bool) {
	for i := s.slot(v); ; i = (i + 1) & (len(s.keys) - 1) {
		switch s.keys[i] {
		case v:
			return s.rows[i], true
		case -1:
			return nil, false
		}
	}
}

// put inserts v's row, resetting first when the store is at its limit
// (clear-all beats eviction here: entries cannot be recycled anyway
// because their cells may have escaped, and the polylog working set
// refills in a handful of queries).
func (s *rowStore) put(v int, row []int) {
	if s.count >= s.limit {
		s.reset()
	}
	if 2*(s.count+1) > len(s.keys) {
		s.grow()
	}
	for i := s.slot(v); ; i = (i + 1) & (len(s.keys) - 1) {
		switch s.keys[i] {
		case v:
			s.rows[i] = row
			return
		case -1:
			s.keys[i], s.rows[i] = v, row
			s.count++
			return
		}
	}
}

func (s *rowStore) grow() {
	oldKeys, oldRows := s.keys, s.rows
	s.init(2 * len(oldKeys))
	for i, k := range oldKeys {
		if k >= 0 {
			s.put(k, oldRows[i])
		}
	}
}

// reset empties the table and abandons the arena block (escaped rows
// stay valid). The table storage itself is kept and cleared in place.
func (s *rowStore) reset() {
	for i := range s.keys {
		s.keys[i] = -1
		s.rows[i] = nil
	}
	s.count = 0
	s.arena.abandon()
}

// EvictPolicy selects the L2 RowCache's eviction scheme.
type EvictPolicy string

// The eviction policies the RowCache implements. LRU keeps an intrusive
// recency list (exact, two index writes per touch); clock keeps one
// reference bit per slot and a sweeping hand (approximate, one bit per
// touch — cheaper under heavy sharing, compared against LRU in the
// lcabench SRC sweep).
const (
	EvictLRU   EvictPolicy = "lru"
	EvictClock EvictPolicy = "clock"
)

// RowCacheStats is a snapshot of a RowCache's traffic.
type RowCacheStats struct {
	Hits, Misses, Evictions uint64
}

// l2slot is one cached row plus its policy state. The row slice is owned
// by the cache and recycled through the size-class free lists on
// eviction — it never escapes (Get copies out under the lock).
type l2slot struct {
	v          int
	row        []int
	prev, next int
	ref        bool
}

// rowClasses spans row capacities up to 2^31 cells.
const rowClasses = 32

// RowCache is the shared L2 of the tiered row-cache hierarchy: a bounded
// vertex->row cache, safe for concurrent use, with recycled cell storage
// and a pluggable eviction policy. Construct with NewRowCache; the zero
// value is unusable.
type RowCache struct {
	mu     sync.Mutex
	policy EvictPolicy
	index  map[int]int // vertex -> slot
	slots  []l2slot
	free   []int             // unused slot indices
	rows   [rowClasses][]int // free-list heads are implicit: recycled buffers by size class
	spare  [rowClasses][][]int
	head   int // LRU: most recent; clock: unused
	tail   int // LRU: least recent
	hand   int // clock sweep position
	stats  RowCacheStats
}

// NewRowCache returns an empty cache holding at most entries rows.
// Unknown policies fall back to LRU — a config typo must not disable
// caching.
func NewRowCache(entries int, policy EvictPolicy) *RowCache {
	if entries < 1 {
		entries = 1
	}
	if policy != EvictClock {
		policy = EvictLRU
	}
	c := &RowCache{
		policy: policy,
		index:  make(map[int]int, entries),
		slots:  make([]l2slot, entries),
		free:   make([]int, 0, entries),
		head:   -1,
		tail:   -1,
	}
	for i := entries - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c
}

// Len returns the number of cached rows.
func (c *RowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Stats returns the traffic snapshot so far.
func (c *RowCache) Stats() RowCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get copies v's cached row into storage obtained from alloc (the
// caller's L1 arena) and reports whether it was present. The copy-out
// API is what lets the cache recycle evicted cell buffers safely: no
// slice of its own storage ever leaves the lock.
func (c *RowCache) Get(v int, alloc func(n int) []int) ([]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[v]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.touch(i)
	c.stats.Hits++
	row := alloc(len(c.slots[i].row))
	copy(row, c.slots[i].row)
	return row, true
}

// Put caches a copy of v's row, evicting per the policy when full.
func (c *RowCache) Put(v int, row []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[v]; ok {
		// Rows are pure functions of the fixed graph; a re-put can only
		// carry the identical cells, so just refresh recency.
		c.touch(i)
		return
	}
	i := c.takeSlot()
	s := &c.slots[i]
	s.v = v
	s.row = append(c.recycled(len(row)), row...)
	s.ref = true
	c.index[v] = i
	if c.policy == EvictLRU {
		c.pushFront(i)
	}
}

// recycled returns an empty buffer with capacity for n cells, reusing an
// evicted buffer of n's size class when one is free.
func (c *RowCache) recycled(n int) []int {
	cl := sizeClass(n)
	if l := len(c.spare[cl]); l > 0 {
		buf := c.spare[cl][l-1]
		c.spare[cl] = c.spare[cl][:l-1]
		return buf[:0]
	}
	if n == 0 {
		return nil
	}
	return make([]int, 0, 1<<cl)
}

// sizeClass maps a row length to its power-of-two capacity class.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// takeSlot returns a free slot, evicting one per the policy when none
// remain. Caller holds mu.
func (c *RowCache) takeSlot() int {
	if l := len(c.free); l > 0 {
		i := c.free[l-1]
		c.free = c.free[:l-1]
		return i
	}
	var i int
	if c.policy == EvictLRU {
		i = c.tail
		c.unlink(i)
	} else {
		// Clock: sweep the hand, clearing reference bits, until an
		// unreferenced slot comes up — second-chance eviction.
		for {
			if c.slots[c.hand].ref {
				c.slots[c.hand].ref = false
				c.hand = (c.hand + 1) % len(c.slots)
				continue
			}
			i = c.hand
			c.hand = (c.hand + 1) % len(c.slots)
			break
		}
	}
	s := &c.slots[i]
	delete(c.index, s.v)
	if cap(s.row) > 0 {
		cl := sizeClass(cap(s.row))
		c.spare[cl] = append(c.spare[cl], s.row)
	}
	s.row = nil
	c.stats.Evictions++
	return i
}

// touch refreshes recency on a hit. Caller holds mu.
func (c *RowCache) touch(i int) {
	if c.policy == EvictLRU {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		return
	}
	c.slots[i].ref = true
}

func (c *RowCache) pushFront(i int) {
	s := &c.slots[i]
	s.prev, s.next = -1, c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *RowCache) unlink(i int) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
}

// TieredStats is a snapshot of a TieredOracle's tier traffic.
type TieredStats struct {
	// L1Hits answered from the instance's own row store, L2Hits from the
	// shared cache, Misses from the backend.
	L1Hits, L2Hits, Misses uint64
}

// DefaultL1Rows bounds the per-instance L1 row store; a polylog working
// set fits thousands of times over, so overflow resets are rare.
const DefaultL1Rows = 1 << 12

// TieredOracle serves probes from the two-tier row cache over any
// source. Safe for concurrent use (a mutex guards the L1 store; parallel
// label assembly shares one instance). On an L1/L2 miss it reads the
// whole row from the backend — locally a row costs barely more than a
// cell, and the polylog guarantee keeps rows short. Like every caching
// tier here, rows are pure functions of the fixed graph, so answers
// never change — only where they come from.
type TieredOracle struct {
	src source.Source
	n   int
	l2  *RowCache // nil: L1 only

	mu    sync.Mutex
	l1    rowStore
	stats TieredStats
}

var (
	_ Oracle   = (*TieredOracle)(nil)
	_ Explorer = (*TieredOracle)(nil)
)

// NewTiered returns a tiered row-cache oracle over src. l2 may be nil
// (L1 only) or shared among instances over the same source.
func NewTiered(src source.Source, l2 *RowCache) *TieredOracle {
	return &TieredOracle{src: src, n: src.N(), l2: l2, l1: newRowStore(DefaultL1Rows)}
}

// TierStats returns the tier-traffic snapshot so far.
func (t *TieredOracle) TierStats() TieredStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// row returns v's full adjacency row: L1, then L2 (copying into the L1
// arena), then the backend. Caller holds mu.
func (t *TieredOracle) row(v int) []int {
	if row, ok := t.l1.get(v); ok {
		t.stats.L1Hits++
		return row
	}
	if t.l2 != nil {
		if row, ok := t.l2.Get(v, t.l1.arena.alloc); ok {
			t.stats.L2Hits++
			t.l1.put(v, row)
			return row
		}
	}
	t.stats.Misses++
	row := t.fetch(v)
	t.l1.put(v, row)
	if t.l2 != nil {
		t.l2.Put(v, row)
	}
	return row
}

// fetch reads one full row from the backend into the L1 arena.
func (t *TieredOracle) fetch(v int) []int {
	d := t.src.Degree(v)
	row := t.l1.arena.alloc(d)
	for i := 0; i < d; i++ {
		w := t.src.Neighbor(v, i)
		if w < 0 {
			// A conformant source has no gap below its degree; degrade the
			// row rather than caching -1 cells.
			return row[:i]
		}
		row[i] = w
	}
	return row
}

// N implements Oracle (free, as everywhere in the model).
func (t *TieredOracle) N() int { return t.n }

// Degree implements Oracle.
func (t *TieredOracle) Degree(v int) int {
	if v < 0 || v >= t.n {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.row(v))
}

// Neighbor implements Oracle.
func (t *TieredOracle) Neighbor(v, i int) int {
	if v < 0 || v >= t.n {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.row(v)
	if i < 0 || i >= len(row) {
		return -1
	}
	return row[i]
}

// Adjacency implements Oracle by scanning the cached row — polylog rows
// make the scan as cheap as a hash lookup, with no per-row index map to
// allocate.
func (t *TieredOracle) Adjacency(u, v int) int {
	if u < 0 || u >= t.n || v < 0 || v >= t.n {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.row(u) {
		if w == v {
			return i
		}
	}
	return -1
}

// Neighbors implements Explorer. The returned slice is the cached row;
// callers must not modify it.
func (t *TieredOracle) Neighbors(v int) []int {
	if v < 0 || v >= t.n {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.row(v)
}

// Prefetch implements Explorer, priming the listed rows.
func (t *TieredOracle) Prefetch(vs ...int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, v := range vs {
		if v >= 0 && v < t.n {
			t.row(v)
		}
	}
}

// Capability forwarders: the tier must not hide the chain's transport
// accounting from the Counter stacked above it.

// RoundTrips forwards the backend's round-trip count (0 when local).
func (t *TieredOracle) RoundTrips() uint64 {
	if rt, ok := t.src.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the backend's failover count (0 when non-sharded).
func (t *TieredOracle) Failovers() uint64 {
	if fo, ok := t.src.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the backend's hedge count (0 when non-sharded).
func (t *TieredOracle) Hedges() uint64 {
	if fo, ok := t.src.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the backend's attestation-failure count (0
// when unattested).
func (t *TieredOracle) AttestFailures() uint64 {
	if ac, ok := t.src.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the backend's transported-proof-byte count (0 when
// unattested).
func (t *TieredOracle) ProofBytes() uint64 {
	if ac, ok := t.src.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// PageTouches forwards the backend's page-touch count (0 when no
// page-mapped backend is underneath).
func (t *TieredOracle) PageTouches() uint64 {
	if lr, ok := source.LocalityOf(t.src); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the backend's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (t *TieredOracle) LocalHits() uint64 {
	if lr, ok := source.LocalityOf(t.src); ok {
		return lr.LocalHits()
	}
	return 0
}
