package oracle

import (
	"fmt"
	"testing"
	"testing/quick"

	"lca/internal/graph"
	"lca/internal/rnd"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	return b.Build()
}

func TestGraphOracleMirrorsGraph(t *testing.T) {
	g := testGraph()
	o := New(g)
	if o.N() != g.N() {
		t.Fatalf("N = %d, want %d", o.N(), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if o.Degree(v) != g.Degree(v) {
			t.Errorf("Degree(%d) mismatch", v)
		}
		for i := 0; i <= g.Degree(v); i++ { // one past the end too
			if o.Neighbor(v, i) != g.Neighbor(v, i) {
				t.Errorf("Neighbor(%d,%d) mismatch", v, i)
			}
		}
		for w := 0; w < g.N(); w++ {
			if o.Adjacency(v, w) != g.AdjacencyIndex(v, w) {
				t.Errorf("Adjacency(%d,%d) mismatch", v, w)
			}
		}
	}
}

func TestCounterCounts(t *testing.T) {
	c := NewCounter(New(testGraph()))
	c.Degree(0)
	c.Degree(1)
	c.Neighbor(0, 0)
	c.Adjacency(0, 1)
	c.Adjacency(0, 5)
	s := c.Stats()
	if s.Degree != 2 || s.Neighbor != 1 || s.Adjacency != 2 || s.Total() != 5 {
		t.Fatalf("stats = %+v", s)
	}
	c.N() // must not count
	if c.Stats().Total() != 5 {
		t.Fatal("N() was counted as a probe")
	}
	c.Reset()
	if c.Stats().Total() != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Neighbor: 10, Degree: 5, Adjacency: 3}
	b := Stats{Neighbor: 4, Degree: 2, Adjacency: 1}
	d := a.Sub(b)
	if d != (Stats{Neighbor: 6, Degree: 3, Adjacency: 2}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Total() != 11 {
		t.Fatalf("Total = %d", d.Total())
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(New(testGraph()))
	r.Degree(3)
	r.Neighbor(3, 0)
	r.Adjacency(3, 4)
	tr := r.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d", len(tr))
	}
	want := []Record{
		{Kind: KindDegree, A: 3, Answer: 1},
		{Kind: KindNeighbor, A: 3, B: 0, Answer: 4},
		{Kind: KindAdjacency, A: 3, B: 4, Answer: 0},
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("trace[%d] = %+v, want %+v", i, tr[i], want[i])
		}
	}
	r.Reset()
	if len(r.Trace()) != 0 {
		t.Fatal("Reset did not clear trace")
	}
}

func TestCachingOracleDeduplicates(t *testing.T) {
	inner := NewCounter(New(testGraph()))
	c := NewCaching(inner)
	outer := NewCounter(c)

	for i := 0; i < 5; i++ {
		outer.Degree(0)
		outer.Neighbor(0, 1)
		outer.Adjacency(1, 2)
	}
	if outer.Stats().Total() != 15 {
		t.Fatalf("outer total = %d, want 15", outer.Stats().Total())
	}
	if inner.Stats().Total() != 3 {
		t.Fatalf("inner total = %d, want 3 (memoized)", inner.Stats().Total())
	}
}

func TestCachingOracleNeighborSeedsAdjacency(t *testing.T) {
	inner := NewCounter(New(testGraph()))
	c := NewCaching(inner)
	w := c.Neighbor(0, 0) // learns that w is neighbor 0 of vertex 0
	if got := c.Adjacency(0, w); got != 0 {
		t.Fatalf("Adjacency(0,%d) = %d, want 0", w, got)
	}
	if inner.Stats().Adjacency != 0 {
		t.Fatal("Adjacency should have been answered from the Neighbor cache")
	}
}

func TestCachingOracleCorrectness(t *testing.T) {
	g := gnpLike(80, 0.15, 3)
	plain := New(g)
	cached := NewCaching(New(g))
	err := quick.Check(func(a, b uint8) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		i := int(b) % (g.Degree(u) + 1)
		return cached.Degree(u) == plain.Degree(u) &&
			cached.Neighbor(u, i) == plain.Neighbor(u, i) &&
			cached.Adjacency(u, v) == plain.Adjacency(u, v)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func gnpLike(n int, p float64, seed rnd.Seed) *graph.Graph {
	prg := rnd.NewPRG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if prg.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// TestCachingOracleConcurrent hammers one shared CachingOracle from many
// goroutines with overlapping probes — the shape of parallel batch
// assembly sharing a probe cache. Run under -race (CI does), this is the
// concurrency-safety regression test; answers are also checked against an
// uncached oracle.
func TestCachingOracleConcurrent(t *testing.T) {
	g := gnpLike(120, 0.1, 9)
	plain := New(g)
	c := NewCaching(New(g))
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			prg := rnd.NewPRG(rnd.Seed(w))
			for q := 0; q < 3000; q++ {
				u := prg.Intn(g.N())
				v := prg.Intn(g.N())
				if c.Degree(u) != plain.Degree(u) {
					errc <- fmt.Errorf("Degree(%d) diverged", u)
					return
				}
				i := prg.Intn(g.Degree(u) + 1)
				if c.Neighbor(u, i) != plain.Neighbor(u, i) {
					errc <- fmt.Errorf("Neighbor(%d,%d) diverged", u, i)
					return
				}
				if c.Adjacency(u, v) != plain.Adjacency(u, v) {
					errc <- fmt.Errorf("Adjacency(%d,%d) diverged", u, v)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
