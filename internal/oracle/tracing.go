package oracle

// Oracle-layer tracing. The accounting wrappers optionally record spans
// into a request's tracer: the prefetching tier spans its batched row
// fetches (so the rpc round trips recorded by the source layer nest
// under the exploration that caused them), the caching tiers mark rows
// served without touching the backend, and the budget wrappers mark the
// exact probe at which a budget ran out. Every site guards on a nil
// tracer before doing any work, so the untraced hot path stays
// allocation-free.
//
// SetTracer mirrors the source layer's TracerSetter capability (the
// interfaces are structurally identical, so serve-side plumbing asserts
// one interface across both layers). Set the tracer before issuing
// probes through the oracle; the field is not synchronized with
// concurrent probing, matching the request-scoped views in source.

import (
	"lca/internal/source"
	"lca/internal/trace"
)

// Compile-time checks that the wrappers expose the same capability as
// the source layer's request-scoped views.
var (
	_ source.TracerSetter = (*PrefetchOracle)(nil)
	_ source.TracerSetter = (*CachingOracle)(nil)
	_ source.TracerSetter = (*LimitOracle)(nil)
	_ source.TracerSetter = (*limitTripsOracle)(nil)
)

// SetTracer attaches a tracer to the prefetching tier: batched row
// fetches record oracle:prefetch spans (with the backend's rpc spans
// nested under them) and row-cache hits on Neighbors record cache-hit
// events. A nil tracer disables tracing.
func (p *PrefetchOracle) SetTracer(tr *trace.Tracer) { p.tr = tr }

// SetTracer attaches a tracer to the memo tier: fully-cached Neighbors
// assemblies record cache-hit events. A nil tracer disables tracing.
func (c *CachingOracle) SetTracer(tr *trace.Tracer) { c.tr = tr }

// SetTracer attaches a tracer to the budget wrapper: the probe that
// exhausts the budget records a budget-exhausted event just before the
// ErrBudgetExceeded panic. A nil tracer disables tracing.
func (l *LimitOracle) SetTracer(tr *trace.Tracer) { l.tr = tr }

// SetTracer attaches a tracer to the round-trip budget wrapper.
func (l *limitTripsOracle) SetTracer(tr *trace.Tracer) { l.tr = tr }

// prefetchTarget labels an oracle:prefetch span with the single row it
// fetches, or -1 for a multi-row hint.
func prefetchTarget(vs []int) int {
	if len(vs) == 1 {
		return vs[0]
	}
	return -1
}
