package oracle

// Tests for the learned prefetch width: the degree-bound clamp
// regression, the estimator's bounds and convergence properties, the
// rowfull fast path through source.RowFetcher, and the capability
// forwarding that surfaces width and remainder trips in Stats.

import (
	"fmt"
	"testing"

	"lca/internal/graph"
	"lca/internal/source"
)

// noBoundSource strips the DegreeBounder capability off a batchSource so
// the learned-width estimator stays enabled (a reported bound at most
// MaxFetchWidth pins the width and disables learning).
type noBoundSource struct {
	b *batchSource
}

func (s *noBoundSource) N() int                 { return s.b.N() }
func (s *noBoundSource) Degree(v int) int       { return s.b.Degree(v) }
func (s *noBoundSource) Neighbor(v, i int) int  { return s.b.Neighbor(v, i) }
func (s *noBoundSource) Adjacency(u, v int) int { return s.b.Adjacency(u, v) }
func (s *noBoundSource) RoundTrips() uint64     { return s.b.RoundTrips() }
func (s *noBoundSource) ProbeBatch(probes []source.ProbeReq) ([]int, error) {
	return s.b.ProbeBatch(probes)
}

// rowSource answers full rows natively (the rowfull wire op's local
// stand-in), counting FetchRows calls.
type rowSource struct {
	g     *graph.Graph
	calls uint64
}

func (s *rowSource) N() int                 { return s.g.N() }
func (s *rowSource) Degree(v int) int       { return s.g.Degree(v) }
func (s *rowSource) Neighbor(v, i int) int  { return s.g.Neighbor(v, i) }
func (s *rowSource) Adjacency(u, v int) int { return s.g.Adjacency(u, v) }

func (s *rowSource) FetchRows(vs []int) ([][]int, error) {
	s.calls++
	rows := make([][]int, len(vs))
	for i, v := range vs {
		deg := s.g.Degree(v)
		row := make([]int, deg)
		for j := 0; j < deg; j++ {
			row[j] = s.g.Neighbor(v, j)
		}
		rows[i] = row
	}
	return rows, nil
}

// ringGraph builds an n-cycle: every row has degree exactly 2.
func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// wideGraph builds a clique over n vertices: every row has degree n-1.
func wideGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// TestPrefetchWidthClampRegression pins the degree-bound clamp: a source
// reporting an absurd max degree must not blow the speculative width (and
// with it every batch's allocation) past MaxFetchWidth.
func TestPrefetchWidthClampRegression(t *testing.T) {
	src := newBatchSource(testGraph())
	src.maxDeg = 1 << 30
	p := NewPrefetch(src)
	if got := p.FetchWidth(); got != MaxFetchWidth {
		t.Fatalf("width under an absurd degree bound = %d, want the %d clamp", got, MaxFetchWidth)
	}
	// The clamped width must still answer correctly.
	row := p.Neighbors(0)
	if len(row) != src.g.Degree(0) {
		t.Fatalf("Neighbors(0) has %d cells, want %d", len(row), src.g.Degree(0))
	}
}

// TestAdaptiveWidthWithinBounds is the safety property: whatever degrees
// the estimator observes, the chosen width stays in [1, MaxFetchWidth].
func TestAdaptiveWidthWithinBounds(t *testing.T) {
	// Degrees spanning sparse to wide: a ring with a clique spliced in.
	b := graph.NewBuilder(300)
	for v := 0; v < 300; v++ {
		b.AddEdge(v, (v+1)%300)
	}
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	p := NewPrefetch(&noBoundSource{b: newBatchSource(g)})
	for v := 0; v < g.N(); v++ {
		p.Prefetch(v)
		if w := p.FetchWidth(); w < 1 || w > MaxFetchWidth {
			t.Fatalf("after observing %d rows the width is %d, outside [1, %d]", v+1, w, MaxFetchWidth)
		}
	}
}

// TestAdaptiveWidthConvergesOnRing is the convergence property: on
// constant-degree rows the learned width settles on exactly that degree
// and remainder trips never occur.
func TestAdaptiveWidthConvergesOnRing(t *testing.T) {
	g := ringGraph(200)
	src := &noBoundSource{b: newBatchSource(g)}
	p := NewPrefetch(src)
	if got := p.FetchWidth(); got != DefaultFetchWidth {
		t.Fatalf("unbounded source starts at width %d, want DefaultFetchWidth %d", got, DefaultFetchWidth)
	}
	for v := 0; v < 100; v++ {
		p.Prefetch(v)
	}
	if got := p.FetchWidth(); got != 2 {
		t.Fatalf("width after 100 degree-2 rows = %d, want 2", got)
	}
	// Converged width exactly covers the rows: one batch per hint, no
	// remainder, and answers identical to the graph.
	before := src.RoundTrips()
	for v := 100; v < 150; v++ {
		p.Prefetch(v)
	}
	if trips := src.RoundTrips() - before; trips != 50 {
		t.Fatalf("50 converged hints cost %d trips, want 50", trips)
	}
	if rem := p.RemainderTrips(); rem != 0 {
		t.Fatalf("constant-degree rows paid %d remainder trips, want 0", rem)
	}
	for v := 0; v < 150; v++ {
		row := p.Neighbors(v)
		if len(row) != 2 || row[0] != g.Neighbor(v, 0) || row[1] != g.Neighbor(v, 1) {
			t.Fatalf("Neighbors(%d) = %v diverged from the graph", v, row)
		}
	}
}

// TestAdaptiveWidthBeatsStaticOnWideRows: on rows wider than the static
// default the learner grows the width and stops paying remainder trips,
// strictly beating the static baseline.
func TestAdaptiveWidthBeatsStaticOnWideRows(t *testing.T) {
	g := wideGraph(101) // every degree is 100, above the static 64
	const rows = 40

	static := NewPrefetch(&noBoundSource{b: newBatchSource(g)}, WithFetchWidth(DefaultFetchWidth))
	for v := 0; v < rows; v++ {
		static.Prefetch(v)
	}
	staticRem := static.RemainderTrips()
	if staticRem != rows {
		t.Fatalf("static width paid %d remainder trips over %d wide rows, want one each", staticRem, rows)
	}

	adaptive := NewPrefetch(&noBoundSource{b: newBatchSource(g)})
	for v := 0; v < rows; v++ {
		adaptive.Prefetch(v)
	}
	adaptiveRem := adaptive.RemainderTrips()
	if adaptiveRem >= staticRem {
		t.Fatalf("adaptive width paid %d remainder trips, static paid %d; learning must strictly reduce them", adaptiveRem, staticRem)
	}
	if w := adaptive.FetchWidth(); w < 100 {
		t.Fatalf("width after observing degree-100 rows = %d, want at least 100", w)
	}
	// Once converged, further wide rows are remainder-free.
	before := adaptive.RemainderTrips()
	for v := rows; v < rows+20; v++ {
		adaptive.Prefetch(v)
	}
	if got := adaptive.RemainderTrips() - before; got != 0 {
		t.Fatalf("converged learner still paid %d remainder trips", got)
	}
	// And the answers never depended on the width.
	for v := 0; v < rows+20; v++ {
		row := adaptive.Neighbors(v)
		if len(row) != 100 {
			t.Fatalf("Neighbors(%d) has %d cells, want 100", v, len(row))
		}
		for j, w := range row {
			if want := g.Neighbor(v, j); w != want {
				t.Fatalf("Neighbors(%d)[%d] = %d, want %d", v, j, w, want)
			}
		}
	}
}

// TestAdaptiveWidthProbeCountsMatchStatic: probe accounting charges the
// cells the algorithm reads, so tuning the width must leave Counter
// totals byte-for-byte identical to a static-width run.
func TestAdaptiveWidthProbeCountsMatchStatic(t *testing.T) {
	g := wideGraph(30)
	run := func(p *PrefetchOracle) (Stats, string) {
		c := NewCounter(p)
		out := ""
		for v := 0; v < g.N(); v++ {
			out += fmt.Sprint(c.Neighbors(v), c.Degree(v), c.Adjacency(v, (v+1)%g.N()))
		}
		return c.Stats(), out
	}
	sStatic, outStatic := run(NewPrefetch(&noBoundSource{b: newBatchSource(g)}, WithFetchWidth(8)))
	sAdaptive, outAdaptive := run(NewPrefetch(&noBoundSource{b: newBatchSource(g)}))
	if outStatic != outAdaptive {
		t.Fatal("answers diverged between static and adaptive widths")
	}
	if sStatic.Total() != sAdaptive.Total() {
		t.Fatalf("probe totals diverged: static %d, adaptive %d — width tuning may only change batching", sStatic.Total(), sAdaptive.Total())
	}
	if sStatic.Neighbor != sAdaptive.Neighbor || sStatic.Degree != sAdaptive.Degree || sStatic.Adjacency != sAdaptive.Adjacency {
		t.Fatalf("per-kind probe counts diverged: static %+v, adaptive %+v", sStatic, sAdaptive)
	}
}

// TestPrefetchUsesRowFetcher pins the rowfull fast path: a backend
// answering full rows natively serves any hint in one call with zero
// remainder trips, whatever the degrees.
func TestPrefetchUsesRowFetcher(t *testing.T) {
	g := wideGraph(80) // degree 79, above the default width
	src := &rowSource{g: g}
	p := NewPrefetch(src)
	p.Prefetch(0, 1, 2, 3, 4)
	if src.calls != 1 {
		t.Fatalf("hint over 5 wide rows cost %d FetchRows calls, want 1", src.calls)
	}
	if rem := p.RemainderTrips(); rem != 0 {
		t.Fatalf("rowfull path paid %d remainder trips, want 0", rem)
	}
	for v := 0; v < 5; v++ {
		row := p.Neighbors(v)
		if len(row) != 79 {
			t.Fatalf("Neighbors(%d) has %d cells, want 79", v, len(row))
		}
		for j, w := range row {
			if want := g.Neighbor(v, j); w != want {
				t.Fatalf("Neighbors(%d)[%d] = %d, want %d", v, j, w, want)
			}
		}
	}
	// The primed rows answer later hints and probes without new calls.
	before := src.calls
	p.Prefetch(0, 1, 2)
	if src.calls != before {
		t.Fatalf("re-hinting primed rows cost %d extra FetchRows calls", src.calls-before)
	}
	st := p.PrefetchStats()
	if st.RemainderTrips != 0 {
		t.Fatalf("stats report %d remainder trips on the rowfull path", st.RemainderTrips)
	}
}

// TestPrefetchReporterForwarding walks the wrapper chain: width and
// remainder trips must stay visible through Caching, Limit and Counter.
func TestPrefetchReporterForwarding(t *testing.T) {
	g := wideGraph(101)
	p := NewPrefetch(&noBoundSource{b: newBatchSource(g)}, WithFetchWidth(DefaultFetchWidth))
	c := NewCounter(NewCaching(p))
	for v := 0; v < 10; v++ {
		c.Neighbors(v)
	}
	st := c.Stats()
	if st.RemainderTrips == 0 {
		t.Fatal("wide rows behind a static width reported zero remainder trips through the chain")
	}
	if st.FetchWidth != DefaultFetchWidth {
		t.Fatalf("Stats.FetchWidth = %d through the chain, want %d", st.FetchWidth, DefaultFetchWidth)
	}
	// Reset rebaselines the counter's remainder window.
	c.Reset()
	if st := c.Stats(); st.RemainderTrips != 0 {
		t.Fatalf("after Reset the counter still reports %d remainder trips", st.RemainderTrips)
	}
	// The budget wrappers forward the capability too.
	l := NewLimit(p, 1<<20)
	if l.FetchWidth() != DefaultFetchWidth || l.RemainderTrips() == 0 {
		t.Fatal("LimitOracle does not forward the prefetch reporter")
	}
	lt := NewLimitTrips(p, 1<<20)
	pr, ok := lt.(PrefetchReporter)
	if !ok {
		t.Fatal("trip-limited chain lost the PrefetchReporter capability")
	}
	if pr.FetchWidth() != DefaultFetchWidth {
		t.Fatalf("trip-limited FetchWidth = %d, want %d", pr.FetchWidth(), DefaultFetchWidth)
	}
}
