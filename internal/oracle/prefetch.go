package oracle

// PrefetchOracle: the backend side of the exploration API. An LCA query
// explores a small neighborhood, yet over a network-backed source every
// scalar probe is a round trip; this wrapper translates Neighbors and
// Prefetch into single source.BatchProber round trips and answers the
// subsequent scalar probes from the primed rows, so a neighborhood costs
// one or two round trips instead of deg+1. On backends without the batch
// capability it degrades to the equivalent scalar loops — same answers,
// no transport advantage — so Session.WithPrefetch is safe to enable
// unconditionally.

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"lca/internal/source"
	"lca/internal/trace"
)

// DefaultFetchWidth is the speculative number of neighbor cells fetched
// alongside a row's degree probe when the backend's maximum degree is
// unknown. Rows at most this long cost one round trip; longer rows cost a
// second for the remainder. When the source has the DegreeBounder
// capability and its bound fits MaxFetchWidth, the bound replaces the
// default and every row costs exactly one round trip.
const DefaultFetchWidth = 64

// MaxFetchWidth caps the speculative width so a degree bound in the
// millions cannot turn one hint into a flood of wasted cells.
const MaxFetchWidth = 4096

// DefaultRowCap bounds the number of cached rows; see WithRowCap.
const DefaultRowCap = 1 << 16

// The learned-width estimator: unless the width is pinned (WithFetchWidth,
// or a degree bound at most MaxFetchWidth — then every row fits and there
// is nothing to learn), each fetched row's degree feeds an EWMA and a
// power-of-two histogram, and the speculative width becomes the high
// quantile's bucket bound — rounded up, so constant-degree families
// converge to exactly their degree and remainder trips vanish, while
// heavy-tailed rows stop over-fetching the sparse majority. Width only
// changes batching, never an answer.
const (
	// degHistBuckets spans degrees 1 .. 2^13; bucket i covers
	// (2^(i-1), 2^i]. MaxFetchWidth clamps whatever the walk reports.
	degHistBuckets = 14
	// widthWindow triggers halving, so the histogram tracks the current
	// workload's degree mix, not the lifetime union.
	widthWindow = 1024
	// widthMinSamples gates re-choosing: below it the starting width holds.
	widthMinSamples = 16
	// widthQuantile is the tail the speculative width must cover.
	widthQuantile = 0.95
	// degEWMAAlpha smooths the mean-degree estimate the quantile is
	// sanity-checked against.
	degEWMAAlpha = 0.1
)

// PrefetchOracle caches full adjacency rows fetched in batched round
// trips. Construct with NewPrefetch; the zero value is unusable. Safe for
// concurrent use (a mutex guards the row cache; batch fetches serialize).
// Cached rows are pure functions of the fixed graph, so the cache never
// changes an answer.
type PrefetchOracle struct {
	src source.Source
	bp  source.BatchProber // nil: backend answers per cell, fall back to loops
	rf  source.RowFetcher  // non-nil: rowfull wire op, no speculation needed
	n   int
	cap int // cached-row bound; the cache is cleared when exceeded

	// tr, when non-nil, records oracle:prefetch spans around batched row
	// fetches and cache-hit events on primed Neighbors reads (tracing.go).
	tr *trace.Tracer

	mu sync.Mutex
	// store holds the primed full adjacency rows in an open-addressed
	// table (no per-row map allocations; the table resets in bulk at the
	// cap). Adjacency scans the polylog row — as cheap as the per-row
	// index maps this replaced, with zero allocation.
	store rowStore
	stats PrefetchStats

	// The learned-width state (guarded by mu; fetchBatched reads a width
	// snapshot taken under the lock).
	width    int  // speculative cells fetched with each degree probe
	adapt    bool // learn width from observed degrees (off when pinned)
	degEWMA  float64
	degHist  [degHistBuckets]uint64
	degTotal uint64
}

var (
	_ Oracle           = (*PrefetchOracle)(nil)
	_ Explorer         = (*PrefetchOracle)(nil)
	_ PrefetchReporter = (*PrefetchOracle)(nil)
)

// PrefetchStats is the transport-side accounting of a PrefetchOracle.
type PrefetchStats struct {
	// Batches counts BatchProber round trips issued.
	Batches uint64
	// BatchedCells counts cells fetched through those batches (including
	// speculative cells beyond a row's degree).
	BatchedCells uint64
	// RowHits counts scalar probes answered from primed rows.
	RowHits uint64
	// Misses counts scalar probes that fell through to the backend.
	Misses uint64
	// RemainderTrips counts the extra round trips spent fetching the row
	// cells beyond the speculative width — the trips the learned width
	// (and the rowfull wire op) exist to erase.
	RemainderTrips uint64
}

// PrefetchOption configures a PrefetchOracle at construction.
type PrefetchOption func(*PrefetchOracle)

// WithFetchWidth pins the speculative fetch width (see DefaultFetchWidth),
// disabling the learned-width estimator. Values above MaxFetchWidth are
// clamped.
func WithFetchWidth(w int) PrefetchOption {
	return func(p *PrefetchOracle) {
		if w > 0 {
			p.width = min(w, MaxFetchWidth)
			p.adapt = false
		}
	}
}

// WithRowCap bounds the number of cached rows (default DefaultRowCap).
// When a fetch would exceed the cap the whole cache is dropped — answers
// are unaffected (rows are pure functions of the graph); only subsequent
// hit rates pay.
func WithRowCap(rows int) PrefetchOption {
	return func(p *PrefetchOracle) {
		if rows > 0 {
			p.cap = rows
		}
	}
}

// NewPrefetch returns a prefetching exploration oracle over src. The
// BatchProber and DegreeBounder capabilities are detected here: the first
// enables batched round trips, the second lets a known small maximum
// degree make every row fetch a single round trip.
func NewPrefetch(src source.Source, opts ...PrefetchOption) *PrefetchOracle {
	p := &PrefetchOracle{
		src:   src,
		n:     src.N(),
		width: DefaultFetchWidth,
		cap:   DefaultRowCap,
	}
	p.adapt = true
	if bp, ok := src.(source.BatchProber); ok {
		p.bp = bp
	}
	if rf, ok := source.RowFetcherOf(src); ok {
		p.rf = rf
	}
	if db, ok := source.DegreeBounderOf(src); ok {
		if d := db.MaxDegree(); d >= 0 {
			// The same clamp WithFetchWidth applies: a source reporting a
			// huge degree bound must not turn every exploration batch into
			// an unbounded speculative prefix.
			p.width = min(d, MaxFetchWidth)
			if d <= MaxFetchWidth {
				// An exact bound means every row already fits one trip;
				// there is nothing left to learn. A clamped bound keeps the
				// estimator on — observed degrees may run far below it.
				p.adapt = false
			}
		}
	}
	for _, o := range opts {
		o(p)
	}
	p.store = newRowStore(p.cap)
	return p
}

// FetchWidth reports the current speculative fetch width — fixed when
// pinned, the estimator's latest choice otherwise.
func (p *PrefetchOracle) FetchWidth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.width
}

// RemainderTrips reports the remainder round trips issued so far.
func (p *PrefetchOracle) RemainderTrips() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats.RemainderTrips
}

// PrefetchStats returns the transport accounting so far.
func (p *PrefetchOracle) PrefetchStats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// RoundTrips implements source.RoundTripCounter by forwarding the
// backend's count: the true network cost, scalar fallthroughs included.
// Local backends (no capability) report 0 — their batches cross no wire.
func (p *PrefetchOracle) RoundTrips() uint64 {
	if rt, ok := p.src.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// Failovers forwards the backend's failover count (0 when non-sharded),
// keeping the source.FailoverCounter capability visible through the
// prefetching tier.
func (p *PrefetchOracle) Failovers() uint64 {
	if fo, ok := p.src.(source.FailoverCounter); ok {
		return fo.Failovers()
	}
	return 0
}

// Hedges forwards the backend's hedge count (0 when non-sharded).
func (p *PrefetchOracle) Hedges() uint64 {
	if fo, ok := p.src.(source.FailoverCounter); ok {
		return fo.Hedges()
	}
	return 0
}

// AttestFailures forwards the backend's attestation-failure count (0 when
// unattested), keeping the source.AttestCounter capability visible
// through the prefetching tier.
func (p *PrefetchOracle) AttestFailures() uint64 {
	if ac, ok := p.src.(source.AttestCounter); ok {
		return ac.AttestFailures()
	}
	return 0
}

// ProofBytes forwards the backend's transported-proof-byte count (0 when
// unattested).
func (p *PrefetchOracle) ProofBytes() uint64 {
	if ac, ok := p.src.(source.AttestCounter); ok {
		return ac.ProofBytes()
	}
	return 0
}

// PageTouches forwards the backend's page-touch count (0 when no
// page-mapped backend is underneath), keeping the
// source.LocalityReporter capability visible through the prefetching
// tier.
func (p *PrefetchOracle) PageTouches() uint64 {
	if lr, ok := source.LocalityOf(p.src); ok {
		return lr.PageTouches()
	}
	return 0
}

// LocalHits forwards the backend's same-page-hit count (0 when no
// page-mapped backend is underneath).
func (p *PrefetchOracle) LocalHits() uint64 {
	if lr, ok := source.LocalityOf(p.src); ok {
		return lr.LocalHits()
	}
	return 0
}

// N implements Oracle (free, as everywhere in the model).
func (p *PrefetchOracle) N() int { return p.n }

// Degree implements Oracle, served from the primed row when present.
func (p *PrefetchOracle) Degree(v int) int {
	p.mu.Lock()
	if row, ok := p.store.get(v); ok {
		p.stats.RowHits++
		p.mu.Unlock()
		return len(row)
	}
	p.stats.Misses++
	p.mu.Unlock()
	return p.src.Degree(v)
}

// Neighbor implements Oracle, served from the primed row when present.
func (p *PrefetchOracle) Neighbor(v, i int) int {
	p.mu.Lock()
	if row, ok := p.store.get(v); ok {
		p.stats.RowHits++
		p.mu.Unlock()
		if i < 0 || i >= len(row) {
			return -1
		}
		return row[i]
	}
	p.stats.Misses++
	p.mu.Unlock()
	return p.src.Neighbor(v, i)
}

// Adjacency implements Oracle. A primed row answers locally by scanning
// its cells — rows are polylog, so the scan matches the per-row index
// maps it replaced without their allocation churn, and repeated
// membership tests (the spanners' bread and butter) stay cheap.
func (p *PrefetchOracle) Adjacency(u, v int) int {
	if u < 0 || u >= p.n || v < 0 || v >= p.n {
		return -1
	}
	p.mu.Lock()
	if row, ok := p.store.get(u); ok {
		p.stats.RowHits++
		p.mu.Unlock()
		for i, w := range row {
			if w == v {
				return i
			}
		}
		return -1
	}
	p.stats.Misses++
	p.mu.Unlock()
	return p.src.Adjacency(u, v)
}

// Neighbors implements Explorer: one (or, past the speculative width, two)
// batched round trips for an uncached row. The returned slice is the
// cached row; callers must not modify it.
func (p *PrefetchOracle) Neighbors(v int) []int {
	if v < 0 || v >= p.n {
		return nil
	}
	p.mu.Lock()
	if row, ok := p.store.get(v); ok {
		p.stats.RowHits++
		p.mu.Unlock()
		if tr := p.tr; tr != nil {
			tr.Event("oracle:neighbors", v, "cache-hit")
		}
		return row
	}
	p.mu.Unlock()
	// Use the fetched copy directly: a concurrent fetch tripping the row
	// cap could clear the cache between our store and a re-read.
	return p.fetchRows([]int{v})[v]
}

// Prefetch implements Explorer: the uncached in-range rows among vs are
// fetched together — one batch covering every row's degree and
// speculative prefix, plus at most one more for the remainders.
func (p *PrefetchOracle) Prefetch(vs ...int) {
	p.mu.Lock()
	var want []int
	seen := make(map[int]bool, len(vs))
	for _, v := range vs {
		if v < 0 || v >= p.n || seen[v] {
			continue
		}
		seen[v] = true
		if _, ok := p.store.get(v); !ok {
			want = append(want, v)
		}
	}
	p.mu.Unlock()
	if len(want) > 0 {
		p.fetchRows(want)
	}
}

// fetchRows fetches the full adjacency rows of vs (in-range,
// deduplicated), stores them, and returns them. The network work runs
// without the lock — concurrent probers keep hitting already-primed rows
// meanwhile — so two goroutines racing on the same row may both fetch
// it; determinism makes the copies identical and the race costs only a
// duplicate trip, the same benign-race stance as CachingOracle.
func (p *PrefetchOracle) fetchRows(vs []int) map[int][]int {
	if tr := p.tr; tr != nil {
		// Push so the rpc spans recorded by the backend nest under the
		// exploration that caused them; fetchRows runs on the caller's
		// goroutine, so the implicit parent stack pairs correctly.
		h := tr.Start("oracle:prefetch", prefetchTarget(vs))
		tr.Push(h)
		defer func() {
			tr.Pop()
			tr.End(h, fmt.Sprintf("rows=%d", len(vs)))
		}()
	}
	rows := make(map[int][]int, len(vs))
	var batches, cells, remTrips uint64
	switch {
	case p.rf != nil:
		p.fetchFull(vs, rows, &batches, &cells)
	case p.bp == nil:
		for _, v := range vs {
			rows[v] = scalarRow(p.src, v)
		}
	default:
		p.mu.Lock()
		width := p.width
		p.mu.Unlock()
		p.fetchBatched(vs, width, rows, &batches, &cells, &remTrips)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Batches += batches
	p.stats.BatchedCells += cells
	p.stats.RemainderTrips += remTrips
	p.observeDegreesLocked(rows)
	// The store resets itself in bulk at its cap; rows are pure functions
	// of the graph, so only hit rate is at stake.
	for v, row := range rows {
		p.store.put(v, row)
	}
	return rows
}

// fetchFull fills rows through the backend's RowFetcher capability (the
// rowfull wire op): degree plus full row per vertex in one answer, so no
// width guess and no remainder trip exist on this path at all. Runs
// without the lock.
func (p *PrefetchOracle) fetchFull(vs []int, rows map[int][]int, batches, cells *uint64) {
	for start := 0; start < len(vs); start += source.MaxProbeBatch {
		chunk := vs[start:min(start+source.MaxProbeBatch, len(vs))]
		got, err := p.rf.FetchRows(chunk)
		if err != nil {
			var pe *source.ProbeError
			if errors.As(err, &pe) {
				panic(pe)
			}
			panic(&source.ProbeError{Op: source.OpRowFull, A: len(chunk), Err: err})
		}
		*batches++
		for i, v := range chunk {
			row := trimRow(got[i], len(got[i]))
			rows[v] = row
			*cells += uint64(len(row)) + 1 // the row plus its degree answer
		}
	}
}

// observeDegreesLocked feeds freshly fetched row degrees into the width
// estimator and re-chooses the speculative width. Caller holds mu.
func (p *PrefetchOracle) observeDegreesLocked(rows map[int][]int) {
	if !p.adapt {
		return
	}
	for _, row := range rows {
		d := len(row)
		if p.degTotal == 0 {
			p.degEWMA = float64(d)
		} else {
			p.degEWMA += degEWMAAlpha * (float64(d) - p.degEWMA)
		}
		p.degHist[degBucket(d)]++
		p.degTotal++
		if p.degTotal >= widthWindow {
			var kept uint64
			for i := range p.degHist {
				p.degHist[i] /= 2
				kept += p.degHist[i]
			}
			p.degTotal = kept
		}
	}
	p.width = p.chooseWidthLocked()
}

// degBucket maps a degree to its histogram bucket; bucket i covers
// (2^(i-1), 2^i].
func degBucket(d int) int {
	if d < 1 {
		return 0
	}
	i := bits.Len64(uint64(d) - 1)
	if i >= degHistBuckets {
		i = degHistBuckets - 1
	}
	return i
}

// chooseWidthLocked picks the speculative width: the widthQuantile
// bucket's upper bound (rounded up to a power of two, so constant-degree
// rows converge exactly), floored by the EWMA's power-of-two ceiling and
// clamped into [1, MaxFetchWidth]. Below widthMinSamples the current
// width holds. Caller holds mu.
func (p *PrefetchOracle) chooseWidthLocked() int {
	if p.degTotal < widthMinSamples {
		return p.width
	}
	rank := uint64(widthQuantile * float64(p.degTotal))
	if rank == 0 {
		rank = 1
	}
	w := 1 << (degHistBuckets - 1)
	var cum uint64
	for i, c := range p.degHist {
		cum += c
		if cum >= rank {
			w = 1 << i
			break
		}
	}
	if e := pow2Ceil(int(math.Ceil(p.degEWMA))); e > w {
		w = e
	}
	return min(max(w, 1), MaxFetchWidth)
}

// pow2Ceil is the smallest power of two at least x (1 for x <= 1).
func pow2Ceil(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// fetchBatched fills rows via batched round trips: every row's degree
// plus its speculative prefix in one batch, then at most one more for the
// cells beyond the width. Runs without the lock; width is the caller's
// snapshot of the (possibly learned) speculative width.
func (p *PrefetchOracle) fetchBatched(vs []int, width int, rows map[int][]int, batches, cells, rem *uint64) {
	stride := width + 1
	probes := make([]source.ProbeReq, 0, len(vs)*stride)
	for _, v := range vs {
		probes = append(probes, source.ProbeReq{Op: source.OpDegree, A: v})
		for i := 0; i < width; i++ {
			probes = append(probes, source.ProbeReq{Op: source.OpNeighbor, A: v, B: i})
		}
	}
	answers := p.batch(probes, batches, cells)
	type remainder struct{ v, deg int }
	var rest []remainder
	for j, v := range vs {
		base := j * stride
		deg := answers[base]
		take := min(deg, width)
		row := trimRow(answers[base+1:base+1+take], deg)
		rows[v] = row
		if len(row) == take && deg > width {
			rest = append(rest, remainder{v: v, deg: deg})
		}
	}
	if len(rest) == 0 {
		return
	}
	probes = probes[:0]
	for _, r := range rest {
		for i := width; i < r.deg; i++ {
			probes = append(probes, source.ProbeReq{Op: source.OpNeighbor, A: r.v, B: i})
		}
	}
	before := *batches
	answers = p.batch(probes, batches, cells)
	*rem += *batches - before
	k := 0
	for _, r := range rest {
		tail := trimRow(answers[k:k+r.deg-width], r.deg)
		k += r.deg - width
		rows[r.v] = append(rows[r.v], tail...)
	}
}

// batch issues one logical batch, chunked to the wire protocol's
// MaxProbeBatch, accumulating transport counts into the caller's locals
// (folded into stats under the lock afterwards). A failed batch panics
// with *source.ProbeError, matching the scalar network-probe contract
// that Session queries and the HTTP server recover into errors.
func (p *PrefetchOracle) batch(probes []source.ProbeReq, batches, cells *uint64) []int {
	out := make([]int, 0, len(probes))
	for len(probes) > 0 {
		chunk := probes
		if len(chunk) > source.MaxProbeBatch {
			chunk = probes[:source.MaxProbeBatch]
		}
		answers, err := p.bp.ProbeBatch(chunk)
		if err != nil {
			var pe *source.ProbeError
			if errors.As(err, &pe) {
				panic(pe)
			}
			panic(&source.ProbeError{Op: "batch", A: len(chunk), Err: err})
		}
		*batches++
		*cells += uint64(len(answers))
		out = append(out, answers...)
		probes = probes[len(chunk):]
	}
	return out
}

// trimRow copies a fetched prefix, stopping at the first out-of-range cell
// (a conformant source has none below the degree; the trim keeps a
// misreporting backend from poisoning the cache with -1 neighbors).
func trimRow(cells []int, deg int) []int {
	row := make([]int, 0, deg)
	for _, w := range cells {
		if w < 0 {
			break
		}
		row = append(row, w)
	}
	return row
}

// scalarRow reads one full row cell by cell — the fallback for backends
// without the batch capability.
func scalarRow(src source.Source, v int) []int {
	deg := src.Degree(v)
	row := make([]int, 0, deg)
	for i := 0; i < deg; i++ {
		w := src.Neighbor(v, i)
		if w < 0 {
			break
		}
		row = append(row, w)
	}
	return row
}
