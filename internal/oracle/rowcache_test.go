package oracle

import (
	"sync"
	"testing"

	"lca/internal/graph"
)

// testGraph builds a deterministic pseudo-random graph for the tier
// tests: n vertices, ~n*d/2 edges from an LCG stream, no self-loops.
func tierGraph(n, d int) *graph.Graph {
	b := graph.NewBuilder(n)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < n*d/2; i++ {
		u, v := next(), next()
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestRowArenaAbandonKeepsEscapedRows(t *testing.T) {
	var a rowArena
	first := a.alloc(4)
	for i := range first {
		first[i] = 100 + i
	}
	// Force an overflow: the arena must abandon its block, not recycle it
	// under the escaped slice.
	for i := 0; i < 4*rowArenaBlock; i += 1024 {
		a.alloc(1024)
	}
	for i, want := range []int{100, 101, 102, 103} {
		if first[i] != want {
			t.Fatalf("escaped cell %d overwritten: got %d, want %d", i, first[i], want)
		}
	}
	if got := len(a.alloc(3)); got != 3 {
		t.Fatalf("alloc(3) after abandon: len %d", got)
	}
	// An allocation larger than the block size must still be served whole.
	if got := len(a.alloc(rowArenaBlock + 1)); got != rowArenaBlock+1 {
		t.Fatalf("oversized alloc: len %d", got)
	}
}

func TestRowStoreGrowAndReset(t *testing.T) {
	const limit = 3 * rowStoreSeed // force at least one grow before reset
	s := newRowStore(limit)
	row := func(v int) []int { return []int{v, v + 1} }
	for v := 0; v < limit; v++ {
		s.put(v, row(v))
	}
	if s.count != limit {
		t.Fatalf("count = %d, want %d", s.count, limit)
	}
	for v := 0; v < limit; v++ {
		got, ok := s.get(v)
		if !ok || got[0] != v || got[1] != v+1 {
			t.Fatalf("get(%d) = %v, %v after grow", v, got, ok)
		}
	}
	if _, ok := s.get(limit + 7); ok {
		t.Fatal("get of absent key reported present")
	}
	// The next put past the limit resets the table first.
	s.put(limit, row(limit))
	if s.count != 1 {
		t.Fatalf("count after overflow reset = %d, want 1", s.count)
	}
	if _, ok := s.get(0); ok {
		t.Fatal("pre-reset entry survived the reset")
	}
	if got, ok := s.get(limit); !ok || got[0] != limit {
		t.Fatalf("post-reset put missing: %v, %v", got, ok)
	}
	// Re-putting an existing key must overwrite in place, not double-count.
	s.put(limit, []int{9})
	if got, _ := s.get(limit); len(got) != 1 || got[0] != 9 {
		t.Fatalf("re-put did not overwrite: %v", got)
	}
	if s.count != 1 {
		t.Fatalf("re-put changed count: %d", s.count)
	}
}

func TestRowCacheLRUEviction(t *testing.T) {
	c := NewRowCache(2, EvictLRU)
	var arena rowArena
	c.Put(1, []int{11})
	c.Put(2, []int{22})
	if _, ok := c.Get(1, arena.alloc); !ok { // touch 1: now 2 is least recent
		t.Fatal("row 1 missing")
	}
	c.Put(3, []int{33}) // evicts 2
	if _, ok := c.Get(2, arena.alloc); ok {
		t.Fatal("LRU kept the least recently used row")
	}
	row1, ok1 := c.Get(1, arena.alloc)
	row3, ok3 := c.Get(3, arena.alloc)
	if !ok1 || !ok3 || row1[0] != 11 || row3[0] != 33 {
		t.Fatalf("surviving rows wrong: %v %v %v %v", row1, ok1, row3, ok3)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestRowCacheClockEviction(t *testing.T) {
	c := NewRowCache(2, EvictClock)
	var arena rowArena
	c.Put(1, []int{11}) // slot 0, referenced
	c.Put(2, []int{22}) // slot 1, referenced
	// Second chance: the hand clears both reference bits, sweeps around,
	// and evicts slot 0 (vertex 1).
	c.Put(3, []int{33})
	if _, ok := c.Get(1, arena.alloc); ok {
		t.Fatal("clock kept the swept slot")
	}
	if _, ok := c.Get(2, arena.alloc); !ok {
		t.Fatal("clock evicted a slot it should have second-chanced")
	}
	if row, ok := c.Get(3, arena.alloc); !ok || row[0] != 33 {
		t.Fatalf("inserted row wrong: %v %v", row, ok)
	}
}

func TestRowCacheCopiesBothWays(t *testing.T) {
	c := NewRowCache(4, EvictLRU)
	var arena rowArena
	src := []int{1, 2, 3}
	c.Put(7, src)
	src[0] = 99 // caller mutates its slice after Put: cache must hold a copy
	got, ok := c.Get(7, arena.alloc)
	if !ok || got[0] != 1 {
		t.Fatalf("Put did not copy: %v %v", got, ok)
	}
	got[1] = 88 // reader mutates its copy: cache must be unaffected
	again, _ := c.Get(7, arena.alloc)
	if again[1] != 2 {
		t.Fatalf("Get did not copy out: %v", again)
	}
}

func TestRowCacheRecyclesEvictedBuffers(t *testing.T) {
	c := NewRowCache(2, EvictLRU)
	var arena rowArena
	// Churn many same-class rows through a 2-entry cache; the size-class
	// free lists must keep Len bounded and the rows correct.
	for v := 0; v < 100; v++ {
		c.Put(v, []int{v, v, v, v, v})
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	for v := 98; v < 100; v++ {
		row, ok := c.Get(v, arena.alloc)
		if !ok || len(row) != 5 || row[0] != v {
			t.Fatalf("survivor %d wrong: %v %v", v, row, ok)
		}
	}
	if st := c.Stats(); st.Evictions != 98 {
		t.Fatalf("evictions = %d, want 98", st.Evictions)
	}
}

func TestTieredOracleMatchesSource(t *testing.T) {
	g := tierGraph(300, 6)
	for _, shared := range []*RowCache{nil, NewRowCache(64, EvictLRU), NewRowCache(64, EvictClock)} {
		to := NewTiered(g, shared)
		if to.N() != g.N() {
			t.Fatalf("N = %d, want %d", to.N(), g.N())
		}
		// Two passes, so the second is answered from the tiers.
		for pass := 0; pass < 2; pass++ {
			for v := 0; v < g.N(); v++ {
				if got, want := to.Degree(v), g.Degree(v); got != want {
					t.Fatalf("Degree(%d) = %d, want %d", v, got, want)
				}
				for i := 0; i <= g.Degree(v); i++ { // one past the end too
					if got, want := to.Neighbor(v, i), g.Neighbor(v, i); got != want {
						t.Fatalf("Neighbor(%d,%d) = %d, want %d", v, i, got, want)
					}
				}
				u := (v * 7) % g.N()
				if got, want := to.Adjacency(v, u), g.Adjacency(v, u); got != want {
					t.Fatalf("Adjacency(%d,%d) = %d, want %d", v, u, got, want)
				}
			}
		}
		if to.Degree(-1) != 0 || to.Degree(g.N()) != 0 || to.Neighbor(-1, 0) != -1 ||
			to.Adjacency(-1, 0) != -1 || to.Adjacency(0, g.N()) != -1 || to.Neighbors(-1) != nil {
			t.Fatal("out-of-range probes must answer the source conventions")
		}
		st := to.TierStats()
		if st.L1Hits == 0 || st.Misses == 0 {
			t.Fatalf("tier stats not accounted: %+v", st)
		}
	}
}

func TestTieredOracleSharedL2(t *testing.T) {
	g := tierGraph(200, 5)
	l2 := NewRowCache(256, EvictLRU)
	warm := NewTiered(g, l2)
	for v := 0; v < g.N(); v++ {
		warm.Degree(v)
	}
	// A second instance over the same L2 must hit it instead of the
	// backend for rows the first one fetched.
	cold := NewTiered(g, l2)
	for v := 0; v < g.N(); v++ {
		if got, want := cold.Degree(v), g.Degree(v); got != want {
			t.Fatalf("Degree(%d) via L2 = %d, want %d", v, got, want)
		}
	}
	st := cold.TierStats()
	if st.L2Hits == 0 {
		t.Fatalf("second instance never hit the shared L2: %+v", st)
	}
	if st.L2Hits+st.Misses != uint64(g.N()) {
		t.Fatalf("first-pass probes unaccounted: %+v over n=%d", st, g.N())
	}
}

func TestTieredOracleConcurrent(t *testing.T) {
	g := tierGraph(400, 6)
	l2 := NewRowCache(64, EvictClock)
	shared := NewTiered(g, l2) // one instance shared across goroutines
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := shared
			if w%2 == 0 {
				to = NewTiered(g, l2) // plus instances sharing only the L2
			}
			for q := 0; q < 2000; q++ {
				v := (q*31 + w*127) % g.N()
				if got, want := to.Degree(v), g.Degree(v); got != want {
					t.Errorf("Degree(%d) = %d, want %d", v, got, want)
					return
				}
				if d := g.Degree(v); d > 0 {
					i := q % d
					if got, want := to.Neighbor(v, i), g.Neighbor(v, i); got != want {
						t.Errorf("Neighbor(%d,%d) = %d, want %d", v, i, got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTieredOracleNeighborsSurvivesReset(t *testing.T) {
	g := tierGraph(3*DefaultL1Rows, 4)
	to := NewTiered(g, nil)
	row := append([]int(nil), to.Neighbors(0)...)
	held := to.Neighbors(0) // arena-backed row held across L1 resets
	for v := 1; v < g.N(); v++ {
		to.Degree(v) // overflows the L1 store repeatedly
	}
	for i := range row {
		if held[i] != row[i] {
			t.Fatalf("held row cell %d changed across L1 reset: %d != %d", i, held[i], row[i])
		}
	}
}

func TestTieredOracleForwardsTransportCounters(t *testing.T) {
	bs := newBatchSource(tierGraph(50, 4))
	to := NewTiered(bs, nil)
	to.Degree(1)
	if to.RoundTrips() == 0 {
		t.Fatal("RoundTrips not forwarded through the tier")
	}
	if to.Failovers() != 0 || to.Hedges() != 0 || to.AttestFailures() != 0 ||
		to.ProofBytes() != 0 || to.PageTouches() != 0 || to.LocalHits() != 0 {
		t.Fatal("absent capabilities must read 0")
	}
}

func TestTieredOracleSteadyStateAllocs(t *testing.T) {
	g := tierGraph(500, 6)
	to := NewTiered(g, NewRowCache(512, EvictLRU))
	for v := 0; v < g.N(); v++ { // prime every row
		to.Degree(v)
	}
	v := 0
	allocs := testing.AllocsPerRun(2000, func() {
		v = (v + 17) % 500
		to.Degree(v)
		to.Neighbor(v, 0)
		to.Adjacency(v, (v*3)%500)
	})
	if allocs != 0 {
		t.Fatalf("steady-state tiered probes allocate: %v allocs/run", allocs)
	}
}
