package oracle

import (
	"testing"
)

func TestLimitOracleAllowsWithinBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 5)
	for i := 0; i < 5; i++ {
		l.Degree(0)
	}
	if l.Used() != 5 {
		t.Fatalf("Used = %d", l.Used())
	}
}

func TestLimitOraclePanicsOverBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 2)
	l.Neighbor(0, 0)
	l.Adjacency(0, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected ErrBudgetExceeded panic")
		}
		e, ok := r.(ErrBudgetExceeded)
		if !ok {
			t.Fatalf("unexpected panic value %v", r)
		}
		if e.Budget != 2 || e.Error() == "" {
			t.Fatalf("bad error payload: %+v", e)
		}
	}()
	l.Degree(0)
}

func TestLimitOracleNIsFree(t *testing.T) {
	l := NewLimit(New(testGraph()), 1)
	for i := 0; i < 10; i++ {
		l.N()
	}
	if l.Used() != 0 {
		t.Fatal("N() must not consume budget")
	}
}

func TestWithinBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 3)
	ok := l.WithinBudget(func() {
		l.Degree(0)
		l.Degree(1)
	})
	if !ok {
		t.Fatal("two probes should fit in a budget of three")
	}
	ok = l.WithinBudget(func() {
		for i := 0; i < 10; i++ {
			l.Degree(0)
		}
	})
	if ok {
		t.Fatal("ten probes must not fit in a budget of three")
	}
	// Reset happens per call: a new run starts fresh.
	if !l.WithinBudget(func() { l.Degree(0) }) {
		t.Fatal("budget window must reset between runs")
	}
}

func TestWithinBudgetPropagatesOtherPanics(t *testing.T) {
	l := NewLimit(New(testGraph()), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("unrelated panics must propagate")
		}
	}()
	l.WithinBudget(func() { panic("unrelated") })
}

// tripCountingOracle is a test double for a network-backed chain: every
// probe consumes one "round trip" visible through the
// source.RoundTripCounter capability.
type tripCountingOracle struct {
	Oracle
	trips uint64
}

func (o *tripCountingOracle) Degree(v int) int {
	o.trips++
	return o.Oracle.Degree(v)
}

func (o *tripCountingOracle) Neighbor(v, i int) int {
	o.trips++
	return o.Oracle.Neighbor(v, i)
}

func (o *tripCountingOracle) Adjacency(u, v int) int {
	o.trips++
	return o.Oracle.Adjacency(u, v)
}

func (o *tripCountingOracle) RoundTrips() uint64 { return o.trips }

func TestLimitTripsLocalChainUnchanged(t *testing.T) {
	inner := New(testGraph())
	if got := NewLimitTrips(inner, 1); got != inner {
		t.Fatal("a chain without RoundTripCounter must be returned unchanged")
	}
}

func TestLimitTripsPanicsOverBudget(t *testing.T) {
	inner := &tripCountingOracle{Oracle: New(testGraph())}
	l := NewLimitTrips(inner, 2)
	l.Degree(0)
	l.Degree(1) // at the budget: still allowed
	defer func() {
		r := recover()
		e, ok := r.(ErrTripBudgetExceeded)
		if !ok {
			t.Fatalf("expected ErrTripBudgetExceeded, got %v", r)
		}
		if e.Budget != 2 || e.Error() == "" {
			t.Fatalf("bad error payload: %+v", e)
		}
	}()
	l.Degree(2)
}

func TestLimitTripsForwardsCounters(t *testing.T) {
	inner := &tripCountingOracle{Oracle: New(testGraph())}
	inner.trips = 7 // pre-existing traffic: the budget window starts here
	l := NewLimitTrips(inner, 100)
	l.Degree(0)
	if rt := l.(interface{ RoundTrips() uint64 }).RoundTrips(); rt != 8 {
		t.Fatalf("RoundTrips = %d, want 8", rt)
	}
}
