package oracle

import (
	"testing"
)

func TestLimitOracleAllowsWithinBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 5)
	for i := 0; i < 5; i++ {
		l.Degree(0)
	}
	if l.Used() != 5 {
		t.Fatalf("Used = %d", l.Used())
	}
}

func TestLimitOraclePanicsOverBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 2)
	l.Neighbor(0, 0)
	l.Adjacency(0, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected ErrBudgetExceeded panic")
		}
		e, ok := r.(ErrBudgetExceeded)
		if !ok {
			t.Fatalf("unexpected panic value %v", r)
		}
		if e.Budget != 2 || e.Error() == "" {
			t.Fatalf("bad error payload: %+v", e)
		}
	}()
	l.Degree(0)
}

func TestLimitOracleNIsFree(t *testing.T) {
	l := NewLimit(New(testGraph()), 1)
	for i := 0; i < 10; i++ {
		l.N()
	}
	if l.Used() != 0 {
		t.Fatal("N() must not consume budget")
	}
}

func TestWithinBudget(t *testing.T) {
	l := NewLimit(New(testGraph()), 3)
	ok := l.WithinBudget(func() {
		l.Degree(0)
		l.Degree(1)
	})
	if !ok {
		t.Fatal("two probes should fit in a budget of three")
	}
	ok = l.WithinBudget(func() {
		for i := 0; i < 10; i++ {
			l.Degree(0)
		}
	})
	if ok {
		t.Fatal("ten probes must not fit in a budget of three")
	}
	// Reset happens per call: a new run starts fresh.
	if !l.WithinBudget(func() { l.Degree(0) }) {
		t.Fatal("budget window must reset between runs")
	}
}

func TestWithinBudgetPropagatesOtherPanics(t *testing.T) {
	l := NewLimit(New(testGraph()), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("unrelated panics must propagate")
		}
	}()
	l.WithinBudget(func() { panic("unrelated") })
}
