package oracle

import (
	"fmt"
	"testing"

	"lca/internal/graph"
	"lca/internal/source"
)

// batchSource wraps a graph as a Source with the BatchProber,
// DegreeBounder and RoundTripCounter capabilities, counting one round
// trip per scalar probe and one per batch — a local stand-in for a
// remote shard with exact transport accounting.
type batchSource struct {
	g      *graph.Graph
	maxDeg int
	trips  uint64
	// failBatches makes ProbeBatch return an error, to test the panic
	// contract.
	failBatches bool
}

func newBatchSource(g *graph.Graph) *batchSource {
	return &batchSource{g: g, maxDeg: g.MaxDegree()}
}

func (b *batchSource) N() int { return b.g.N() }

func (b *batchSource) Degree(v int) int { b.trips++; return b.g.Degree(v) }

func (b *batchSource) Neighbor(v, i int) int { b.trips++; return b.g.Neighbor(v, i) }

func (b *batchSource) Adjacency(u, v int) int { b.trips++; return b.g.Adjacency(u, v) }

func (b *batchSource) MaxDegree() int { return b.maxDeg }

func (b *batchSource) RoundTrips() uint64 { return b.trips }

func (b *batchSource) ProbeBatch(probes []source.ProbeReq) ([]int, error) {
	if b.failBatches {
		return nil, fmt.Errorf("batch backend down")
	}
	b.trips++
	out := make([]int, len(probes))
	for i, p := range probes {
		switch p.Op {
		case source.OpDegree:
			out[i] = b.g.Degree(p.A)
		case source.OpNeighbor:
			out[i] = b.g.Neighbor(p.A, p.B)
		case source.OpAdjacency:
			out[i] = b.g.Adjacency(p.A, p.B)
		default:
			return nil, fmt.Errorf("unexpected op %q", p.Op)
		}
	}
	return out, nil
}

func TestPrefetchOracleAnswersMatchScalar(t *testing.T) {
	g := testGraph()
	p := NewPrefetch(newBatchSource(g))
	for v := 0; v < g.N(); v++ {
		row := p.Neighbors(v)
		if len(row) != g.Degree(v) {
			t.Fatalf("Neighbors(%d) has %d cells, Degree is %d", v, len(row), g.Degree(v))
		}
		if p.Degree(v) != g.Degree(v) {
			t.Fatalf("Degree(%d) mismatch after priming", v)
		}
		for i := 0; i <= g.Degree(v); i++ { // one past the end too
			if got, want := p.Neighbor(v, i), g.Neighbor(v, i); got != want {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", v, i, got, want)
			}
		}
		for w := 0; w < g.N(); w++ {
			if got, want := p.Adjacency(v, w), g.AdjacencyIndex(v, w); got != want {
				t.Fatalf("Adjacency(%d,%d) = %d, want %d", v, w, got, want)
			}
		}
	}
	if got := p.Adjacency(-1, 0); got != -1 {
		t.Fatalf("Adjacency(-1,0) = %d, want -1", got)
	}
}

func TestPrefetchOracleCollapsesRoundTrips(t *testing.T) {
	g := testGraph()
	src := newBatchSource(g)
	p := NewPrefetch(src)
	// Max degree fits the fetch width, so one hint over three vertices is
	// exactly one batch.
	before := src.RoundTrips()
	p.Prefetch(0, 1, 2)
	if trips := src.RoundTrips() - before; trips != 1 {
		t.Fatalf("Prefetch(0,1,2) cost %d round trips, want 1", trips)
	}
	// Every subsequent scalar probe of the primed rows is free.
	before = src.RoundTrips()
	for _, v := range []int{0, 1, 2} {
		d := p.Degree(v)
		for i := 0; i < d; i++ {
			p.Neighbor(v, i)
		}
		p.Adjacency(v, (v+1)%3)
	}
	if trips := src.RoundTrips() - before; trips != 0 {
		t.Fatalf("primed probes cost %d round trips, want 0", trips)
	}
	// Re-hinting primed rows fetches nothing.
	before = src.RoundTrips()
	p.Prefetch(0, 1, 2)
	if trips := src.RoundTrips() - before; trips != 0 {
		t.Fatalf("re-hint cost %d round trips, want 0", trips)
	}
	st := p.PrefetchStats()
	if st.Batches != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 batch and no misses", st)
	}
}

func TestPrefetchOracleSecondTripBeyondWidth(t *testing.T) {
	// A star: center degree 9 against fetch width 2 needs a remainder
	// fetch — two round trips, never one per cell.
	b := graph.NewBuilder(10)
	for v := 1; v < 10; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	src := newBatchSource(g)
	p := NewPrefetch(src, WithFetchWidth(2))
	before := src.RoundTrips()
	row := p.Neighbors(0)
	if trips := src.RoundTrips() - before; trips != 2 {
		t.Fatalf("wide row cost %d round trips, want 2", trips)
	}
	if len(row) != 9 {
		t.Fatalf("row has %d cells, want 9", len(row))
	}
	for i, w := range row {
		if w != g.Neighbor(0, i) {
			t.Fatalf("cell %d = %d, want %d", i, w, g.Neighbor(0, i))
		}
	}
}

func TestPrefetchOracleScalarFallback(t *testing.T) {
	// A plain graph has no batch capability: exploration must still
	// answer identically (scalar loops under the hood).
	g := testGraph()
	p := NewPrefetch(g)
	for v := 0; v < g.N(); v++ {
		row := p.Neighbors(v)
		if len(row) != g.Degree(v) {
			t.Fatalf("fallback Neighbors(%d) has %d cells, want %d", v, len(row), g.Degree(v))
		}
		for i, w := range row {
			if w != g.Neighbor(v, i) {
				t.Fatalf("fallback cell (%d,%d) = %d, want %d", v, i, w, g.Neighbor(v, i))
			}
		}
	}
	if p.RoundTrips() != 0 {
		t.Fatal("local fallback reported network round trips")
	}
}

func TestPrefetchOracleBatchFailurePanicsProbeError(t *testing.T) {
	src := newBatchSource(testGraph())
	src.failBatches = true
	p := NewPrefetch(src)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected *source.ProbeError panic")
		}
		if _, ok := r.(*source.ProbeError); !ok {
			t.Fatalf("unexpected panic payload %T: %v", r, r)
		}
	}()
	p.Neighbors(0)
}

func TestCounterExplorationAccounting(t *testing.T) {
	g := testGraph()
	c := NewCounter(New(g))
	row := c.Neighbors(0)
	s := c.Stats()
	// Exactly the scalar loop's account: one Degree plus one Neighbor per
	// cell, and one batch operation.
	if s.Degree != 1 || s.Neighbor != uint64(len(row)) || s.Batches != 1 {
		t.Fatalf("stats after Neighbors = %+v (row len %d)", s, len(row))
	}
	c.Prefetch(1, 2)
	s = c.Stats()
	if s.Total() != 1+uint64(len(row)) {
		t.Fatalf("Prefetch charged cell probes: %+v", s)
	}
	if s.Batches != 2 {
		t.Fatalf("Prefetch not counted as a batch: %+v", s)
	}
}

func TestCounterReportsRoundTrips(t *testing.T) {
	src := newBatchSource(testGraph())
	p := NewPrefetch(src)
	c := NewCounter(p)
	c.Neighbors(0)
	if rt := c.Stats().RoundTrips; rt != 1 {
		t.Fatalf("Stats().RoundTrips = %d, want 1", rt)
	}
	c.Reset()
	c.Neighbor(0, 0) // primed: free
	if rt := c.Stats().RoundTrips; rt != 0 {
		t.Fatalf("round trips after Reset and primed probe = %d, want 0", rt)
	}
}

func TestLimitOracleChargesExplorationPerCell(t *testing.T) {
	g := testGraph() // deg(0) = 2
	l := NewLimit(New(g), 3)
	if row := l.Neighbors(0); len(row) != 2 {
		t.Fatalf("row len %d, want 2", len(row))
	}
	if l.Used() != 3 {
		t.Fatalf("Used = %d after a 2-cell row, want 3 (degree + cells)", l.Used())
	}
	// The next row does not fit in the window: budget must fire.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected ErrBudgetExceeded")
		} else if _, ok := r.(ErrBudgetExceeded); !ok {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	l.Neighbors(1)
}

func TestLimitOraclePrefetchIsFree(t *testing.T) {
	l := NewLimit(New(testGraph()), 1)
	l.Prefetch(0, 1, 2, 3)
	if l.Used() != 0 {
		t.Fatalf("Prefetch consumed budget: Used = %d", l.Used())
	}
}

func TestCachingOracleNeighborsMemoizes(t *testing.T) {
	src := newBatchSource(testGraph())
	c := NewCaching(src)
	first := c.Neighbors(0)
	before := src.RoundTrips()
	second := c.Neighbors(0)
	if src.RoundTrips() != before {
		t.Fatal("second Neighbors hit the backend")
	}
	if len(first) != len(second) {
		t.Fatalf("rows differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rows differ at %d: %v vs %v", i, first, second)
		}
	}
	// The row also primed the scalar caches.
	before = src.RoundTrips()
	c.Degree(0)
	c.Neighbor(0, 0)
	c.Adjacency(0, first[0])
	if src.RoundTrips() != before {
		t.Fatal("scalar probes of a memoized row hit the backend")
	}
}

func TestRecorderNeighborsTracesCells(t *testing.T) {
	r := NewRecorder(New(testGraph()))
	row := r.Neighbors(0)
	tr := r.Trace()
	if len(tr) != 1+len(row) {
		t.Fatalf("trace has %d records, want %d", len(tr), 1+len(row))
	}
	if tr[0].Kind != KindDegree || tr[0].Answer != len(row) {
		t.Fatalf("first record = %+v, want the degree", tr[0])
	}
	for i, w := range row {
		rec := tr[1+i]
		if rec.Kind != KindNeighbor || rec.A != 0 || rec.B != i || rec.Answer != w {
			t.Fatalf("record %d = %+v, want Neighbor(0,%d)=%d", 1+i, rec, i, w)
		}
	}
}

func TestNeighborsHelperFallback(t *testing.T) {
	g := testGraph()
	for v := 0; v < g.N(); v++ {
		row := Neighbors(New(g), v)
		if len(row) != g.Degree(v) {
			t.Fatalf("helper row len %d, want %d", len(row), g.Degree(v))
		}
	}
	Prefetch(nil, 1, 2) // must not panic
	Prefetch(New(g))    // empty hint: no-op
}

func TestPrefetchOracleRowCapClears(t *testing.T) {
	src := newBatchSource(testGraph())
	p := NewPrefetch(src, WithRowCap(2))
	p.Prefetch(0)
	p.Prefetch(1)
	// The third row exceeds the cap: the cache clears and refills, and
	// answers stay correct throughout.
	p.Prefetch(2)
	if got := p.Degree(2); got != testGraph().Degree(2) {
		t.Fatalf("Degree(2) = %d after cap clear", got)
	}
}

func TestPrefetchOracleConcurrentProbing(t *testing.T) {
	// Concurrent explorers and scalar probers over one PrefetchOracle:
	// answers must stay correct under -race, and racing fetches of one
	// row are benign (identical copies).
	g := testGraph()
	p := NewPrefetch(newBatchSource(g))
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for it := 0; it < 200; it++ {
				v := (w + it) % g.N()
				row := p.Neighbors(v)
				if len(row) != g.Degree(v) {
					done <- fmt.Errorf("worker %d: Neighbors(%d) len %d, want %d", w, v, len(row), g.Degree(v))
					return
				}
				if d := p.Degree(v); d != g.Degree(v) {
					done <- fmt.Errorf("worker %d: Degree(%d) = %d", w, v, d)
					return
				}
				if g.Degree(v) > 0 {
					if got := p.Adjacency(v, row[0]); got != 0 {
						done <- fmt.Errorf("worker %d: Adjacency(%d,%d) = %d, want 0", w, v, row[0], got)
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
