package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 50})
	for _, v := range []float64{1, 5, 15, 30, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 151 {
		t.Fatalf("sum = %v, want 151", h.Sum())
	}
	if got, want := h.Mean(), 151.0/5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// The overflow observation (100) clamps quantiles to the last bound.
	if got := h.Quantile(1); got != 50 {
		t.Fatalf("p100 = %v, want clamp to 50", got)
	}
	if got := h.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("p0 = %v, want within first bucket", got)
	}
}

// TestHistogramQuantileAccuracy: with one observation per unit value, the
// interpolated quantile must land within one bucket width of the truth.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(LatencyBucketsUS)
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 500, 100},
		{0.95, 950, 100},
		{0.99, 990, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramEmptyAndBadBounds(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must answer zeros")
	}
	for _, bad := range [][]float64{nil, {}, {2, 1}, {1, 1}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

func TestRegistryLazyAndStable(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Add(7)
	if c2 := r.Counter("x"); c2 != c1 || c2.Value() != 7 {
		t.Fatal("Counter must return the same instance per name")
	}
	h1 := r.Histogram("lat", LatencyBucketsUS)
	if h2 := r.Histogram("lat", CountBuckets); h2 != h1 {
		t.Fatal("Histogram must keep the first ladder per name")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Histogram("lat", LatencyBucketsUS).Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("lat", LatencyBucketsUS).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}

func TestExportJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_queries_total{kind=vertex}").Add(3)
	h := r.Histogram("serve_query_latency_us{kind=vertex}", LatencyBucketsUS)
	h.Observe(120)
	h.Observe(80)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON export does not round-trip: %v", err)
	}
	if snap.Counters["serve_queries_total{kind=vertex}"] != 3 {
		t.Fatalf("counter missing from JSON export: %+v", snap.Counters)
	}
	hs := snap.Histograms["serve_query_latency_us{kind=vertex}"]
	if hs.Count != 2 || hs.Sum != 200 || hs.P99 == 0 {
		t.Fatalf("histogram export wrong: %+v", hs)
	}

	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"serve_queries_total{kind=vertex} 3", "count=2", "p99="} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
}
