// Package metrics is the serving tier's observability plane: atomic
// counters and fixed-bucket histograms collected into a registry with
// JSON and text export.
//
// The design constraint is the same o(n)-state discipline the LCA model
// imposes on algorithms (Alon–Rubinfeld–Vardi–Xie, space-efficient
// LCAs): observing a query must cost O(1) time and the whole plane O(1)
// memory, independent of traffic. Counters are single atomics;
// histograms hold a fixed bucket ladder chosen at construction and never
// grow, so quantiles (p50/p95/p99) are estimates interpolated within a
// bucket — accurate to the bucket resolution, bounded in state, and safe
// to read while writers are recording. Nothing here allocates on the
// observation path.
//
// A Registry is a flat name → metric table. Names are plain strings; by
// convention a dimension is folded into the name Prometheus-style
// ("serve_queries_total{kind=vertex}"), which keeps the table bounded as
// long as dimensions are drawn from fixed sets (query kinds, HTTP
// statuses, configured tenants) — never from request data.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram records observations into a fixed ladder of buckets: bounds
// holds the inclusive upper bound of each bucket, and one implicit
// overflow bucket catches everything above the last bound. State is
// fixed at construction — an arbitrarily long run of observations costs
// the same few hundred bytes. Safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given strictly increasing
// finite bucket bounds. Panics on an empty or unsorted ladder —
// histogram shapes are compile-time decisions, not request data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic("metrics: histogram bounds must be finite and strictly increasing")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the mean observation, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the rank. Observations above the last bound
// clamp to it — pick a ladder whose top exceeds plausible values.
// Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		inBucket := float64(h.counts[i].Load())
		if cum+inBucket >= rank && inBucket > 0 {
			if i == len(h.bounds) { // overflow bucket: clamp
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / inBucket
			return lo + (hi-lo)*frac
		}
		cum += inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBucketsUS is the default ladder for latency histograms in
// microseconds: 1us .. 10s on a 1-2-5 progression.
var LatencyBucketsUS = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7,
}

// CountBuckets is the default ladder for per-query count histograms
// (probes, round trips): powers of two up to 2^20.
var CountBuckets = func() []float64 {
	b := make([]float64, 21)
	for i := range b {
		b[i] = float64(uint64(1) << i)
	}
	return b
}()

// Registry is a named collection of metrics. Metrics are created lazily
// and live for the registry's lifetime; reads for export are lock-free
// snapshots of the atomics. The zero value is not usable — construct
// with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it over bounds on
// first use; an existing histogram keeps its original ladder.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Bucket is one exported histogram bucket: the count of observations at
// or below the upper bound LE (non-cumulative; the overflow count above
// the last bound is reported separately).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Mean     float64  `json:"mean"`
	P50      float64  `json:"p50"`
	P95      float64  `json:"p95"`
	P99      float64  `json:"p99"`
	Overflow uint64   `json:"overflow,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the exported state of a registry at one instant. Counter
// and histogram reads are individually atomic (the snapshot as a whole
// is not a consistent cut — observability, not accounting).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports this histogram's summary without its buckets (the
// form standalone consumers like lcaload report).
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot(false) }

func (h *Histogram) snapshot(withBuckets bool) HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	s.Overflow = h.counts[len(h.bounds)].Load()
	if withBuckets {
		for i, b := range h.bounds {
			if c := h.counts[i].Load(); c > 0 {
				s.Buckets = append(s.Buckets, Bucket{LE: b, Count: c})
			}
		}
	}
	return s
}

// Snapshot exports every metric, including non-empty histogram buckets.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot(true)
	}
	return s
}

// WriteJSON writes the snapshot as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes one line per metric, sorted by name — the greppable
// form for terminals and runbooks.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%.1f mean=%.2f p50=%.1f p95=%.1f p99=%.1f\n",
			name, h.Count, h.Sum, h.Mean, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	return nil
}
