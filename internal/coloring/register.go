package coloring

// Registry descriptor: the coloring LCA self-registers so every downstream
// surface dispatches to it by name.

import (
	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
)

func init() {
	registry.Register(registry.Descriptor{
		Name:    "coloring",
		Kind:    registry.KindLabel,
		Summary: "(Delta+1)-coloring label queries (sparse-regime classic)",
		New: func(o oracle.Oracle, seed rnd.Seed, _ registry.Params) (any, error) {
			return New(o, seed), nil
		},
		CheckLabels: func(g *graph.Graph, labels []int) error {
			return core.VerifyColoring(g, labels, g.MaxDegree()+1)
		},
	})
}
