package coloring

import (
	"sort"
	"testing"

	"lca/internal/baseline"
	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

func workloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":   gen.Gnp(120, 0.06, 1),
		"torus": gen.Torus(9, 9),
		"path":  gen.Path(50),
		"comp":  gen.Complete(20),
		"bip":   gen.CompleteBipartite(15, 20),
	}
}

func TestColoringProper(t *testing.T) {
	for name, g := range workloads() {
		for seed := rnd.Seed(0); seed < 5; seed++ {
			lca := New(oracle.New(g), seed)
			colors, _ := core.BuildLabels(g, lca)
			if err := core.VerifyColoring(g, colors, g.MaxDegree()+1); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestColoringMatchesGlobalGreedy(t *testing.T) {
	for name, g := range workloads() {
		lca := New(oracle.New(g), 4)
		order := make([]int, g.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return lca.Before(order[i], order[j]) })
		want := baseline.GreedyColoring(g, order)
		for v := 0; v < g.N(); v++ {
			if lca.QueryLabel(v) != want[v] {
				t.Fatalf("%s: LCA color %d at %d, greedy %d", name, lca.QueryLabel(v), v, want[v])
			}
		}
	}
}

func TestColoringPerVertexDegreeBound(t *testing.T) {
	// First-fit gives color(v) <= deg(v), a stronger per-vertex bound than
	// Delta+1.
	g := gen.ChungLu(150, 2.5, 6, 3)
	lca := New(oracle.New(g), 6)
	for v := 0; v < g.N(); v++ {
		if c := lca.QueryLabel(v); c > g.Degree(v) {
			t.Fatalf("color(%d) = %d exceeds degree %d", v, c, g.Degree(v))
		}
	}
}

func TestColoringCliqueUsesAllColors(t *testing.T) {
	g := gen.Complete(12)
	lca := New(oracle.New(g), 8)
	seen := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		seen[lca.QueryLabel(v)] = true
	}
	if len(seen) != 12 {
		t.Fatalf("K12 used %d colors, want 12", len(seen))
	}
}

func TestColoringDeterministic(t *testing.T) {
	g := gen.Gnp(80, 0.1, 9)
	a, b := New(oracle.New(g), 3), New(oracle.New(g), 3)
	for v := 0; v < g.N(); v++ {
		if a.QueryLabel(v) != b.QueryLabel(v) {
			t.Fatalf("instances disagree at %d", v)
		}
	}
}
