// Package coloring implements a (Delta+1)-coloring LCA via random-order
// greedy simulation: each vertex takes the smallest color unused by its
// predecessors in a hash-derived random order. A query recursively colors
// the lower-priority neighborhood, so the probe cost mirrors the MIS
// query-tree behaviour.
package coloring

import (
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Coloring is an LCA answering "what color is v?" queries consistently
// with the greedy first-fit coloring under a random vertex order. Colors
// are in [0, deg(v)+1) for each v, hence globally within [0, Delta+1).
// Construct with New; the zero value is unusable. Not safe for concurrent
// use.
type Coloring struct {
	counter *oracle.Counter
	fam     *rnd.Family
	memo    map[int]int
}

// New returns a coloring LCA over o.
func New(o oracle.Oracle, seed rnd.Seed) *Coloring {
	return &Coloring{
		counter: oracle.NewCounter(o),
		fam:     rnd.NewFamily(seed.Derive(0xc01), 16),
		memo:    make(map[int]int),
	}
}

// ProbeStats exposes cumulative probe counts.
func (c *Coloring) ProbeStats() oracle.Stats { return c.counter.Stats() }

// Before reports whether u precedes v in the random greedy order
// (priorities tie-broken by ID, so the order is a strict total order).
func (c *Coloring) Before(u, v int) bool {
	hu, hv := c.fam.Hash(uint64(u)), c.fam.Hash(uint64(v))
	if hu != hv {
		return hu < hv
	}
	return u < v
}

// QueryLabel returns v's color: the smallest color not taken by any
// neighbor preceding v in the random order. The full neighbor row is
// always needed here, so the scan is one exploration — a single batched
// round trip on network backends.
func (c *Coloring) QueryLabel(v int) int {
	if col, ok := c.memo[v]; ok {
		return col
	}
	row := c.counter.Neighbors(v)
	deg := len(row)
	used := make([]bool, deg+1)
	for _, w := range row {
		if c.Before(w, v) {
			if wc := c.QueryLabel(w); wc <= deg {
				used[wc] = true
			}
		}
	}
	col := 0
	for col <= deg && used[col] {
		col++
	}
	c.memo[v] = col
	return col
}
