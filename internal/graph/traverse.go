package graph

// This file contains traversal primitives used by verifiers, baselines and
// the local algorithms' ground-truth checks: bounded BFS, pairwise
// distances, connectivity and component structure.

// Dist returns the shortest-path distance between u and v, exploring at
// most maxDepth hops (maxDepth < 0 means unbounded). It returns -1 if v is
// unreachable within the bound.
func (g *Graph) Dist(u, v, maxDepth int) int {
	if u == v {
		return 0
	}
	if maxDepth == 0 {
		return -1
	}
	// Bidirectional would be faster but plain BFS keeps the verifier code
	// obviously correct; verification runs on small instances.
	dist := make(map[int]int, 64)
	dist[u] = 0
	frontier := []int{u}
	for len(frontier) > 0 {
		var next []int
		for _, x := range frontier {
			d := dist[x]
			if maxDepth >= 0 && d >= maxDepth {
				continue
			}
			for _, w := range g.adj[x] {
				wi := int(w)
				if _, seen := dist[wi]; seen {
					continue
				}
				if wi == v {
					return d + 1
				}
				dist[wi] = d + 1
				next = append(next, wi)
			}
		}
		frontier = next
	}
	return -1
}

// BFSWithin returns all vertices at distance <= radius from v (including v)
// together with their distances, in discovery order. Neighbor lists are
// walked in probe order, so the discovery order matches what an oracle-
// driven BFS would see on the same graph.
func (g *Graph) BFSWithin(v, radius int) (order []int, dist map[int]int) {
	dist = map[int]int{v: 0}
	order = []int{v}
	for qi := 0; qi < len(order); qi++ {
		x := order[qi]
		d := dist[x]
		if radius >= 0 && d >= radius {
			continue
		}
		for _, w := range g.adj[x] {
			wi := int(w)
			if _, seen := dist[wi]; !seen {
				dist[wi] = d + 1
				order = append(order, wi)
			}
		}
	}
	return order, dist
}

// Components returns the component ID of each vertex (IDs are 0-based in
// order of lowest-numbered member) and the number of components.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for v := 0; v < g.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.adj[x] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, int(w))
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has at most one component.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, c := g.Components()
	return c <= 1
}

// SameComponents reports whether h preserves the component structure of g:
// every pair of vertices connected in g is connected in h. (h is typically
// a spanning subgraph of g, so the converse holds trivially.)
func SameComponents(g, h *Graph) bool {
	if g.N() != h.N() {
		return false
	}
	cg, _ := g.Components()
	ch, _ := h.Components()
	// Vertices in the same g-component must map to the same h-component.
	rep := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		if r, ok := rep[cg[v]]; ok {
			if ch[v] != r {
				return false
			}
		} else {
			rep[cg[v]] = ch[v]
		}
	}
	return true
}

// Girth returns the length of the shortest cycle, or -1 for a forest.
// O(n*m): one BFS per vertex, detecting the first non-tree edge that
// closes a cycle through the root's BFS layers.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int, g.N())
	parent := make([]int, g.N())
	for src := 0; src < g.N(); src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		parent[src] = -1
		queue := []int{src}
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			if best >= 0 && 2*dist[x] >= best {
				break // no shorter cycle reachable from here
			}
			for _, w := range g.adj[x] {
				wi := int(w)
				if dist[wi] == -1 {
					dist[wi] = dist[x] + 1
					parent[wi] = x
					queue = append(queue, wi)
					continue
				}
				if wi == parent[x] {
					continue
				}
				// Non-tree edge: a cycle through src of length at most
				// dist[x] + dist[wi] + 1 (exact for the first one found at
				// minimal levels).
				if c := dist[x] + dist[wi] + 1; best < 0 || c < best {
					best = c
				}
			}
		}
	}
	return best
}

// AllDistancesFrom returns dist[v] for all v reachable from src (-1 for
// unreachable), via BFS.
func (g *Graph) AllDistancesFrom(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		for _, w := range g.adj[x] {
			if dist[w] == -1 {
				dist[w] = dist[x] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}
