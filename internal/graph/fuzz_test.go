package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the parser: arbitrary bytes must either parse
// into a consistent graph or return an error — never panic, never produce
// a graph whose invariants fail.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("3 1\n0 1\n"))
	f.Add([]byte("3 2\n0 1\n1 2\n"))
	f.Add([]byte(""))
	f.Add([]byte("abc"))
	f.Add([]byte("5 1\n# comment\n\n3 4\n"))
	f.Add([]byte("2 1\n0 0\n"))
	f.Add([]byte("-3 -7\n"))
	f.Add([]byte("3 1\n0 1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd vertex counts: the parser allocates O(n),
		// which is legitimate for real inputs but an OOM vector under
		// fuzzing.
		firstLine, _, _ := strings.Cut(string(data), "\n")
		fields := strings.Fields(firstLine)
		if len(fields) > 0 {
			if n, err := strconv.Atoi(fields[0]); err == nil && n > 1_000_000 {
				t.Skip("header too large for fuzzing")
			}
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed graphs must be internally consistent.
		if len(g.Edges()) != g.M() {
			t.Fatalf("edge count mismatch: %d vs %d", len(g.Edges()), g.M())
		}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatal("self-loop survived parsing")
			}
			if g.AdjacencyIndex(e.U, e.V) < 0 || g.AdjacencyIndex(e.V, e.U) < 0 {
				t.Fatal("adjacency index inconsistent")
			}
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzEdgeCanonKey checks the canonical-key bijection on arbitrary pairs.
func FuzzEdgeCanonKey(f *testing.F) {
	f.Add(0, 1)
	f.Add(7, 7)
	f.Add(1000000, 3)
	f.Fuzz(func(t *testing.T, u, v int) {
		if u < 0 || v < 0 || u > 1<<30 || v > 1<<30 {
			t.Skip()
		}
		a := Edge{U: u, V: v}
		b := Edge{U: v, V: u}
		if a.Key() != b.Key() {
			t.Fatalf("keys differ for (%d,%d)", u, v)
		}
		c := a.Canon()
		if c.U > c.V {
			t.Fatalf("canon not ordered: %+v", c)
		}
	})
}
