package graph

import (
	"bytes"
	"testing"
)

func TestCSRRoundTrip(t *testing.T) {
	b := NewBuilder(9)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {5, 6}, {6, 7}, {7, 5}, {0, 8}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadCSRHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.N != int64(g.N()) || h.Entries != int64(2*g.M()) || !h.Sorted {
		t.Fatalf("header = %+v, want n=%d entries=%d sorted", h, g.N(), 2*g.M())
	}
	got, err := ReadCSR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		for i := 0; i < g.Degree(v); i++ {
			if got.Neighbor(v, i) != g.Neighbor(v, i) {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", v, i, got.Neighbor(v, i), g.Neighbor(v, i))
			}
		}
	}
}

func TestWriteCSRStreamRejectsOversizedN(t *testing.T) {
	var buf bytes.Buffer
	n := int(int64(1)<<31) + 2 // above the int32 cell space
	err := WriteCSRStream(&buf, n, func(int) int { return 0 }, func(int, int) int { return -1 })
	if err == nil {
		t.Fatal("WriteCSRStream accepted n beyond the int32 vertex space")
	}
}

func TestCSRRejectsGarbage(t *testing.T) {
	if _, err := ReadCSRHeader(bytes.NewReader([]byte("not a csr file at all"))); err == nil {
		t.Fatal("garbage accepted as CSR header")
	}
	var empty bytes.Buffer
	if err := WriteCSR(&empty, NewBuilder(0).Build()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSR(bytes.NewReader(empty.Bytes())); err != nil {
		t.Fatalf("empty graph round trip: %v", err)
	}
}
