package graph

// Serialization. Two formats live here:
//
// Edge-list text — deliberately trivial, for small inputs and diffable
// fixtures:
//
//	n m
//	u v
//	...
//
// one edge per line in canonical orientation, so files diff cleanly and
// external tools can produce inputs for the cmd/ binaries.
//
// CSR binary — the cold-probe format behind the disk-backed source backend
// (internal/source.OpenCSR): a graph is saved once and then probed without
// ever loading O(n) state. Layout, all fixed-width little-endian:
//
//	offset 0:  magic "LCACSR1\n" (8 bytes)
//	offset 8:  n int64 (vertices)
//	offset 16: entries int64 (adjacency cells = 2m)
//	offset 24: flags uint32 (bit 0: every adjacency list is sorted)
//	offset 28: reserved uint32 (zero)
//	offset 32: offsets, (n+1) x int64 — offsets[v] is the index of v's
//	           first adjacency cell; offsets[n] == entries
//	then:      neighbors, entries x int32, concatenated in probe order
//
// Degree(v) is two offset reads, Neighbor(v,i) one more 4-byte read, and
// with the sorted flag Adjacency(u,v) is a binary search — every probe is
// O(1) or O(log deg) seeks with zero resident state.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g to w in edge-list text format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list text format. Adjacency lists of the
// result are in sorted (canonical) order.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative header values n=%d m=%d", n, m)
	}
	b := NewBuilder(n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", line, u)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Build()
	if g.M() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, parsed %d distinct", m, g.M())
	}
	return g, nil
}

// CSR binary format constants; see the package comment for the layout.
const (
	csrMagic = "LCACSR1\n"
	// CSRHeaderSize is the byte offset at which the offset table starts.
	CSRHeaderSize = 32
	// CSRSortedFlag marks files whose adjacency lists are all sorted,
	// enabling binary-search Adjacency probes.
	CSRSortedFlag = 1 << 0
)

// CSRHeader is the decoded fixed-size header of a CSR file, exposing the
// byte layout to cold-probing readers.
type CSRHeader struct {
	// N is the number of vertices.
	N int64
	// Entries is the number of adjacency cells (2m).
	Entries int64
	// Sorted reports whether every adjacency list is sorted ascending.
	Sorted bool
}

// OffsetPos returns the byte position of offsets[v].
func (h CSRHeader) OffsetPos(v int64) int64 { return CSRHeaderSize + 8*v }

// NeighborPos returns the byte position of adjacency cell i.
func (h CSRHeader) NeighborPos(i int64) int64 { return CSRHeaderSize + 8*(h.N+1) + 4*i }

// WriteCSR serializes g in CSR binary format. Adjacency lists are written
// in probe order; the sorted flag is set iff every list is ascending, so
// shuffled builds round-trip with their order (and probe answers) intact.
func WriteCSR(w io.Writer, g *Graph) error {
	return WriteCSRStream(w, g.N(), g.Degree, g.Neighbor)
}

// WriteCSRStream writes CSR binary format from any (degree, neighbor)
// probe pair, streaming — the writer never holds the adjacency in memory,
// so implicit and disk-backed sources of any edge count can be saved.
// Each neighbor cell is probed at most twice (one fused header pass for
// totals and sortedness, one emission pass) and each degree three times
// (header, offset table, emission). Neighbor cells are int32, so the
// vertex count must fit
// the int32 ID space; larger n is rejected up front (a silent uint32 wrap
// would corrupt IDs on disk).
func WriteCSRStream(w io.Writer, n int, degree func(v int) int, neighbor func(v, i int) int) error {
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	if int64(n) > math.MaxInt32+1 {
		return fmt.Errorf("graph: n=%d exceeds the int32 vertex space of the CSR format", n)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	// One fused pass computes the entry count and the sorted flag (both
	// must be known before the header is emitted): probes can be
	// expensive — an O(block) scan on blockrandom, a network round trip
	// on a remote source — so no sweep is spent that a previous sweep
	// already paid for.
	var entries int64
	sorted := true
	for v := 0; v < n; v++ {
		d := degree(v)
		if d < 0 {
			return fmt.Errorf("graph: negative degree %d at vertex %d", d, v)
		}
		entries += int64(d)
		prev := -1
		for i := 0; sorted && i < d; i++ {
			w := neighbor(v, i)
			if w <= prev {
				sorted = false
				break
			}
			prev = w
		}
	}
	if _, err := bw.WriteString(csrMagic); err != nil {
		return err
	}
	var buf [8]byte
	writeU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(buf[:], x)
		_, err := bw.Write(buf[:8])
		return err
	}
	writeU32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], x)
		_, err := bw.Write(buf[:4])
		return err
	}
	if err := writeU64(uint64(n)); err != nil {
		return err
	}
	if err := writeU64(uint64(entries)); err != nil {
		return err
	}
	flags := uint32(0)
	if sorted {
		flags |= CSRSortedFlag
	}
	if err := writeU32(flags); err != nil {
		return err
	}
	if err := writeU32(0); err != nil {
		return err
	}
	// Offset table.
	var acc int64
	for v := 0; v <= n; v++ {
		if err := writeU64(uint64(acc)); err != nil {
			return err
		}
		if v < n {
			acc += int64(degree(v))
		}
	}
	// Neighbor cells.
	for v := 0; v < n; v++ {
		d := degree(v)
		for i := 0; i < d; i++ {
			w := neighbor(v, i)
			if w < 0 || w >= n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range [0,%d)", w, v, n)
			}
			if err := writeU32(uint32(w)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSRHeader decodes and validates the fixed-size CSR header.
func ReadCSRHeader(r io.ReaderAt) (CSRHeader, error) {
	var buf [CSRHeaderSize]byte
	if _, err := r.ReadAt(buf[:], 0); err != nil {
		return CSRHeader{}, fmt.Errorf("graph: reading CSR header: %w", err)
	}
	if string(buf[:8]) != csrMagic {
		return CSRHeader{}, fmt.Errorf("graph: bad CSR magic %q", buf[:8])
	}
	h := CSRHeader{
		N:       int64(binary.LittleEndian.Uint64(buf[8:16])),
		Entries: int64(binary.LittleEndian.Uint64(buf[16:24])),
		Sorted:  binary.LittleEndian.Uint32(buf[24:28])&CSRSortedFlag != 0,
	}
	if h.N < 0 || h.Entries < 0 || h.Entries%2 != 0 {
		return CSRHeader{}, fmt.Errorf("graph: implausible CSR header n=%d entries=%d", h.N, h.Entries)
	}
	return h, nil
}

// ReadCSR loads a CSR file fully into an in-memory Graph (adjacency order
// is preserved only up to the Builder's canonical sort; use
// internal/source.OpenCSR to probe the file cold and order-faithfully).
func ReadCSR(r io.ReaderAt) (*Graph, error) {
	h, err := ReadCSRHeader(r)
	if err != nil {
		return nil, err
	}
	n := int(h.N)
	b := NewBuilder(n)
	off := make([]byte, 8*(n+1))
	if _, err := r.ReadAt(off, CSRHeaderSize); err != nil {
		return nil, fmt.Errorf("graph: reading CSR offsets: %w", err)
	}
	cells := make([]byte, 4*h.Entries)
	if h.Entries > 0 {
		if _, err := r.ReadAt(cells, h.NeighborPos(0)); err != nil {
			return nil, fmt.Errorf("graph: reading CSR neighbors: %w", err)
		}
	}
	for v := 0; v < n; v++ {
		lo := int64(binary.LittleEndian.Uint64(off[8*v:]))
		hi := int64(binary.LittleEndian.Uint64(off[8*(v+1):]))
		if lo > hi || hi > h.Entries {
			return nil, fmt.Errorf("graph: corrupt CSR offsets at vertex %d", v)
		}
		for i := lo; i < hi; i++ {
			w := int(binary.LittleEndian.Uint32(cells[4*i:]))
			if w < 0 || w >= n {
				return nil, fmt.Errorf("graph: CSR neighbor %d of vertex %d out of range", w, v)
			}
			if w != v {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}
