package graph

// Edge-list text serialization. The format is deliberately trivial:
//
//	n m
//	u v
//	...
//
// one edge per line in canonical orientation, so files diff cleanly and
// external tools can produce inputs for the cmd/ binaries.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g to w in edge-list text format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list text format. Adjacency lists of the
// result are in sorted (canonical) order.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative header values n=%d m=%d", n, m)
	}
	b := NewBuilder(n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", line, u)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Build()
	if g.M() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, parsed %d distinct", m, g.M())
	}
	return g, nil
}
