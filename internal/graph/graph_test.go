package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lca/internal/rnd"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func randomGraph(n int, p float64, seed rnd.Seed) *Graph {
	prg := rnd.NewPRG(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if prg.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.BuildShuffled(rnd.NewPRG(seed.Derive(1)))
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 2) // self-loop, dropped
	b.AddEdge(2, 3)
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", b.NumEdges())
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 4, 2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edges present")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := path(5)
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, d := range wantDeg {
		if g.Degree(v) != d {
			t.Errorf("Degree(%d) = %d, want %d", v, g.Degree(v), d)
		}
	}
	if g.Neighbor(0, 0) != 1 || g.Neighbor(0, 1) != -1 || g.Neighbor(0, -1) != -1 {
		t.Error("Neighbor probe semantics broken at endpoint")
	}
}

func TestAdjacencyIndexInverse(t *testing.T) {
	for seed := rnd.Seed(0); seed < 5; seed++ {
		g := randomGraph(40, 0.2, seed)
		for v := 0; v < g.N(); v++ {
			for i := 0; i < g.Degree(v); i++ {
				w := g.Neighbor(v, i)
				if got := g.AdjacencyIndex(v, w); got != i {
					t.Fatalf("seed %d: AdjacencyIndex(%d,%d) = %d, want %d", seed, v, w, got, i)
				}
			}
		}
		// Non-edges must answer -1.
		for v := 0; v < g.N(); v++ {
			for w := 0; w < g.N(); w++ {
				if v != w && !g.HasEdge(v, w) && g.AdjacencyIndex(v, w) != -1 {
					t.Fatalf("AdjacencyIndex on non-edge (%d,%d) != -1", v, w)
				}
			}
		}
	}
}

func TestQuickAdjacencySymmetric(t *testing.T) {
	g := randomGraph(60, 0.15, 99)
	err := quick.Check(func(a, b uint16) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		return g.HasEdge(u, v) == g.HasEdge(v, u)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := randomGraph(30, 0.3, 7)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges count %d != M %d", len(edges), g.M())
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		if i > 0 {
			p := edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Fatalf("edges not sorted: %v before %v", p, e)
			}
		}
	}
}

func TestShuffledBuildSameEdgeSet(t *testing.T) {
	b := NewBuilder(20)
	prg := rnd.NewPRG(3)
	for i := 0; i < 60; i++ {
		b.AddEdge(prg.Intn(20), prg.Intn(20))
	}
	sorted := b.Build()
	shuffled := b.BuildShuffled(rnd.NewPRG(4))
	if sorted.M() != shuffled.M() {
		t.Fatalf("edge counts differ: %d vs %d", sorted.M(), shuffled.M())
	}
	for _, e := range sorted.Edges() {
		if !shuffled.HasEdge(e.U, e.V) {
			t.Fatalf("shuffled build lost edge %v", e)
		}
	}
	// And the adjacency index must still be a correct inverse.
	for v := 0; v < shuffled.N(); v++ {
		for i := 0; i < shuffled.Degree(v); i++ {
			if shuffled.AdjacencyIndex(v, shuffled.Neighbor(v, i)) != i {
				t.Fatal("adjacency index broken after shuffle")
			}
		}
	}
}

func TestDist(t *testing.T) {
	g := path(6)
	cases := []struct{ u, v, maxDepth, want int }{
		{0, 5, -1, 5},
		{0, 5, 4, -1},
		{0, 5, 5, 5},
		{2, 2, -1, 0},
		{0, 3, -1, 3},
	}
	for _, c := range cases {
		if got := g.Dist(c.u, c.v, c.maxDepth); got != c.want {
			t.Errorf("Dist(%d,%d,%d) = %d, want %d", c.u, c.v, c.maxDepth, got, c.want)
		}
	}
	two := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	if two.Dist(0, 3, -1) != -1 {
		t.Error("cross-component distance should be -1")
	}
}

func TestDistAgainstFloydWarshall(t *testing.T) {
	g := randomGraph(25, 0.15, 11)
	n := g.N()
	const inf = 1 << 29
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else if g.HasEdge(i, j) {
				d[i][j] = 1
			} else {
				d[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := d[i][j]
			if want == inf {
				want = -1
			}
			if got := g.Dist(i, j, -1); got != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestBFSWithin(t *testing.T) {
	g := cycle(10)
	order, dist := g.BFSWithin(0, 2)
	if len(order) != 5 { // 0, two at distance 1, two at distance 2
		t.Fatalf("BFSWithin found %d vertices, want 5", len(order))
	}
	for _, v := range order {
		if dist[v] > 2 {
			t.Fatalf("vertex %d at distance %d exceeds radius", v, dist[v])
		}
	}
	if order[0] != 0 || dist[0] != 0 {
		t.Fatal("BFS must start at the source")
	}
	// Discovery order must be non-decreasing in distance.
	for i := 1; i < len(order); i++ {
		if dist[order[i]] < dist[order[i-1]] {
			t.Fatal("BFS discovery order not level by level")
		}
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comp, count := g.Components()
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] != comp[4] {
		t.Error("component assignments wrong")
	}
	if comp[0] == comp[3] || comp[5] == comp[6] {
		t.Error("distinct components merged")
	}
	if !complete(5).IsConnected() {
		t.Error("K5 should be connected")
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestSameComponents(t *testing.T) {
	g := cycle(8)
	spanning := FromEdges(8, g.Edges()[:7]) // drop one cycle edge
	if !SameComponents(g, spanning) {
		t.Error("spanning tree should preserve components")
	}
	broken := FromEdges(8, g.Edges()[:6])
	if SameComponents(g, broken) {
		t.Error("six edges of an 8-cycle cannot span it")
	}
}

func TestAllDistancesFrom(t *testing.T) {
	g := path(5)
	d := g.AllDistancesFrom(2)
	want := []int{2, 1, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("AllDistancesFrom(2)[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := complete(5)
	h := g.Subgraph([]Edge{{0, 1}, {1, 2}})
	if h.M() != 2 || h.N() != 5 {
		t.Fatalf("subgraph n=%d m=%d", h.N(), h.M())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign edge")
		}
	}()
	path(3).Subgraph([]Edge{{0, 2}})
}

func TestEdgeSet(t *testing.T) {
	s := NewEdgeSet()
	s.Add(3, 1)
	s.Add(1, 3) // same edge
	s.Add(0, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Has(1, 3) || !s.Has(3, 1) || !s.Has(2, 0) {
		t.Error("membership broken")
	}
	edges := s.Edges()
	if len(edges) != 2 || edges[0] != (Edge{0, 2}) || edges[1] != (Edge{1, 3}) {
		t.Errorf("Edges() = %v", edges)
	}
}

func TestIORoundTrip(t *testing.T) {
	for seed := rnd.Seed(0); seed < 4; seed++ {
		g := randomGraph(50, 0.1, seed)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N(), g.M(), back.N(), back.M())
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("lost edge %v", e)
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"abc",
		"3 1\n0 0\n",   // self loop
		"3 1\n0 5\n",   // out of range
		"3 2\n0 1\n",   // header mismatch
		"3 1\n0 1 2\n", // too many fields
		"3 1\n0 x\n",   // non-numeric
		"-1 0\n",       // negative n
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadEdgeList(strings.NewReader("3 1\n# comment\n\n0 1\n"))
	if err != nil || g.M() != 1 {
		t.Errorf("comment handling: %v, m=%v", err, g)
	}
}

func TestMinMaxDegree(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 || g.MinDegree() != 0 {
		t.Errorf("max=%d min=%d, want 3, 0", g.MaxDegree(), g.MinDegree())
	}
	empty := NewBuilder(0).Build()
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 {
		t.Error("empty graph degrees should be 0")
	}
}

func TestEdgeCanonKey(t *testing.T) {
	a, b := Edge{5, 2}, Edge{2, 5}
	if a.Key() != b.Key() {
		t.Error("canonical keys differ for the same undirected edge")
	}
	if a.Canon() != (Edge{2, 5}) {
		t.Errorf("Canon = %v", a.Canon())
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"triangle", complete(3), 3},
		{"k5", complete(5), 3},
		{"c4", cycle(4), 4},
		{"c9", cycle(9), 9},
		{"path", path(10), -1},
		{"tree", FromEdges(5, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}}), -1},
		{"petersen-ish grid", FromEdges(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 3, V: 4}, {U: 4, V: 5}}), 4},
	}
	for _, c := range cases {
		if got := c.g.Girth(); got != c.want {
			t.Errorf("%s: girth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestGirthBipartiteComplete(t *testing.T) {
	b := NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	if got := b.Build().Girth(); got != 4 {
		t.Errorf("K33 girth = %d, want 4", got)
	}
}

func TestRandomEdgeUniform(t *testing.T) {
	g := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}})
	prg := rnd.NewPRG(9)
	counts := map[Edge]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		u, v := g.RandomEdge(prg)
		if !g.HasEdge(u, v) || u > v {
			t.Fatalf("RandomEdge returned (%d,%d)", u, v)
		}
		counts[Edge{U: u, V: v}]++
	}
	want := float64(trials) / float64(g.M())
	for e, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Errorf("edge %v drawn %d times, want about %.0f", e, c, want)
		}
	}
}

func TestRandomEdgeSkipsIsolatedVertices(t *testing.T) {
	// Vertices 1 and 3 are isolated; sampling must still be correct.
	g := FromEdges(5, []Edge{{U: 0, V: 2}, {U: 2, V: 4}})
	prg := rnd.NewPRG(3)
	for i := 0; i < 1000; i++ {
		u, v := g.RandomEdge(prg)
		if !g.HasEdge(u, v) {
			t.Fatalf("bad edge (%d,%d)", u, v)
		}
	}
}

func TestRandomEdgePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on edgeless graph")
		}
	}()
	NewBuilder(3).Build().RandomEdge(rnd.NewPRG(1))
}
