package graph

import (
	"testing"

	"lca/internal/rnd"
)

func benchGraph(b *testing.B, n int, deg int) *Graph {
	b.Helper()
	prg := rnd.NewPRG(1)
	bld := NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 0; j < deg; j++ {
			w := prg.Intn(n)
			if w != v {
				bld.AddEdge(v, w)
			}
		}
	}
	return bld.Build()
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchGraph(b, 2000, 8)
	}
}

func BenchmarkAdjacencyIndex(b *testing.B) {
	g := benchGraph(b, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AdjacencyIndex(i%g.N(), (i*7)%g.N())
	}
}

func BenchmarkNeighbor(b *testing.B) {
	g := benchGraph(b, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Neighbor(i%g.N(), i%8)
	}
}

func BenchmarkBFSWithin(b *testing.B) {
	g := benchGraph(b, 5000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSWithin(i%g.N(), 3)
	}
}

func BenchmarkRandomEdge(b *testing.B) {
	g := benchGraph(b, 5000, 10)
	prg := rnd.NewPRG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RandomEdge(prg)
	}
}
