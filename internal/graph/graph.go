// Package graph provides the static graph substrate behind the LCA probe
// oracle: simple undirected graphs with fixed, arbitrary adjacency-list
// orderings, constant-time adjacency-index lookup, and the traversal
// primitives used by verifiers and baselines.
//
// The adjacency-list ordering is semantically significant in the LCA model:
// Neighbor probes expose "the i-th neighbor of v", and several spanner
// constructions make decisions based on list positions (first sqrt(n)
// neighbors, block boundaries, ...). Builders therefore fix an explicit
// order at construction time and never reorder afterwards.
package graph

import (
	"fmt"
	"sort"

	"lca/internal/rnd"
)

// Graph is an immutable simple undirected graph on vertices 0..N()-1.
// Vertex IDs are the indices themselves. The zero value is the empty graph.
type Graph struct {
	adj  [][]int32        // adj[v] is the ordered neighbor list of v
	pos  map[uint64]int32 // (u,v) -> index of v in adj[u]
	m    int              // number of undirected edges
	stub []int64          // stub[v] = sum of degrees of vertices < v
}

// pairKey packs an ordered vertex pair into a map key.
func pairKey(u, v int) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbor returns the i-th neighbor of v (0-indexed), or -1 if i is out of
// range. This mirrors the Neighbor probe semantics of the LCA model.
func (g *Graph) Neighbor(v, i int) int {
	if i < 0 || i >= len(g.adj[v]) {
		return -1
	}
	return int(g.adj[v][i])
}

// Neighbors returns v's neighbor list in probe order. The slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// RandomEdge returns a uniformly random edge in canonical orientation. It
// implements the "random edge" oracle extension used by sublinear-time
// estimators: a uniformly random directed stub maps to a uniform
// undirected edge because each edge owns exactly two stubs. It panics on
// an edgeless graph.
func (g *Graph) RandomEdge(prg *rnd.PRG) (u, v int) {
	if g.m == 0 {
		panic("graph: RandomEdge on edgeless graph")
	}
	stub := int64(prg.Intn(2 * g.m))
	// Binary search the stub prefix sums: O(log n) per sample.
	lo, hi := 0, len(g.stub)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.stub[mid] <= stub {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	w := lo
	x := int(g.adj[w][stub-g.stub[w]])
	e := Edge{U: w, V: x}.Canon()
	return e.U, e.V
}

// AdjacencyIndex returns the index of v in Gamma(u), or -1 if (u,v) is not
// an edge. This mirrors the Adjacency probe semantics of the LCA model: a
// positive answer reveals the position, not just existence.
func (g *Graph) AdjacencyIndex(u, v int) int {
	if i, ok := g.pos[pairKey(u, v)]; ok {
		return int(i)
	}
	return -1
}

// Adjacency is AdjacencyIndex under the probe-model name, making *Graph
// satisfy the source.Source probe substrate directly (the in-memory
// adapter backend of internal/source).
func (g *Graph) Adjacency(u, v int) int { return g.AdjacencyIndex(u, v) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.pos[pairKey(u, v)]
	return ok
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, l := range g.adj {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, l := range g.adj[1:] {
		if len(l) < min {
			min = len(l)
		}
	}
	return min
}

// Edge is an undirected edge in canonical orientation (U < V).
type Edge struct {
	U, V int
}

// Canon returns e with endpoints swapped into canonical order.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Key packs the canonical edge into a comparable map key.
func (e Edge) Key() uint64 {
	c := e.Canon()
	return pairKey(c.U, c.V)
}

// Edges returns all edges in canonical orientation, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, l := range g.adj {
		for _, w := range l {
			if u < int(w) {
				out = append(out, Edge{U: u, V: int(w)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are merged and self-loops rejected. The zero value is unusable;
// construct with NewBuilder.
type Builder struct {
	n     int
	edges map[uint64]struct{}
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[uint64]struct{})}
}

// AddEdge records the undirected edge {u,v}. Self-loops and duplicates are
// ignored. It panics on out-of-range vertices.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges[Edge{U: u, V: v}.Key()] = struct{}{}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.edges[Edge{U: u, V: v}.Key()]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the graph with adjacency lists sorted by neighbor ID
// (a fixed, canonical order).
func (b *Builder) Build() *Graph {
	return b.build(nil)
}

// BuildShuffled produces the graph with each adjacency list independently
// shuffled by the PRG. The LCA model allows arbitrary list orderings;
// shuffled builds exercise order-sensitivity in tests and experiments.
func (b *Builder) BuildShuffled(prg *rnd.PRG) *Graph {
	return b.build(prg)
}

func (b *Builder) build(prg *rnd.PRG) *Graph {
	adj := make([][]int32, b.n)
	keys := make([]uint64, 0, len(b.edges))
	for k := range b.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		u, v := int(k>>32), int(uint32(k))
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	// Deterministic sorted order first; optional shuffle second.
	for v := range adj {
		l := adj[v]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		if prg != nil {
			prg.Shuffle(len(l), func(i, j int) { l[i], l[j] = l[j], l[i] })
		}
	}
	g := &Graph{adj: adj, m: len(b.edges), pos: make(map[uint64]int32, 2*len(b.edges))}
	g.stub = make([]int64, len(adj))
	var acc int64
	for v, l := range adj {
		g.stub[v] = acc
		acc += int64(len(l))
		for i, w := range l {
			g.pos[pairKey(v, int(w))] = int32(i)
		}
	}
	return g
}

// FromEdges builds a graph on n vertices from an edge list (duplicates and
// self-loops dropped), with sorted adjacency lists.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Subgraph builds the subgraph of g containing exactly the given edges
// (all must be edges of g) on the same vertex set.
func (g *Graph) Subgraph(edges []Edge) *Graph {
	b := NewBuilder(g.N())
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			panic(fmt.Sprintf("graph: subgraph edge (%d,%d) not in parent", e.U, e.V))
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// EdgeSet is a set of undirected edges keyed canonically. It is the working
// representation of an LCA-assembled solution before it becomes a Graph.
type EdgeSet map[uint64]struct{}

// NewEdgeSet returns an empty edge set.
func NewEdgeSet() EdgeSet { return make(EdgeSet) }

// Add inserts {u,v}.
func (s EdgeSet) Add(u, v int) { s[Edge{U: u, V: v}.Key()] = struct{}{} }

// Has reports membership of {u,v}.
func (s EdgeSet) Has(u, v int) bool {
	_, ok := s[Edge{U: u, V: v}.Key()]
	return ok
}

// Len returns the number of edges in the set.
func (s EdgeSet) Len() int { return len(s) }

// Edges materializes the set as a sorted slice.
func (s EdgeSet) Edges() []Edge {
	out := make([]Edge, 0, len(s))
	for k := range s {
		out = append(out, Edge{U: int(k >> 32), V: int(uint32(k))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
