// Package estimate implements the classical application that motivated
// LCAs in the property-testing literature: estimating global solution
// sizes in sublinear time by querying an LCA on a random sample. If
// membership of each element can be decided locally, then |solution|/n is
// a mean of Bernoulli variables, and Hoeffding's inequality turns s
// sampled queries into an additive-epsilon estimate with confidence
// 1-delta for s = O(log(1/delta)/epsilon^2) — independent of n.
package estimate

import (
	"math"

	"lca/internal/core"
	"lca/internal/oracle"
	"lca/internal/rnd"
)

// Result is an estimate with its Hoeffding confidence radius.
type Result struct {
	// Fraction is the estimated fraction of sampled elements in the
	// solution.
	Fraction float64
	// ErrorBound is the additive radius epsilon such that the true
	// fraction lies within [Fraction-epsilon, Fraction+epsilon] with
	// probability at least 1-delta (over the sample).
	ErrorBound float64
	// Samples is the number of queries issued.
	Samples int
}

// Scale converts the fraction estimate to an absolute count over a
// universe of the given size.
func (r Result) Scale(universe int) (count, radius float64) {
	return r.Fraction * float64(universe), r.ErrorBound * float64(universe)
}

// hoeffdingRadius returns epsilon for s samples at confidence 1-delta.
func hoeffdingRadius(s int, delta float64) float64 {
	if s <= 0 {
		return 1
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.05
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(s)))
}

// SamplesFor returns the sample count that achieves additive error epsilon
// at confidence 1-delta.
func SamplesFor(epsilon, delta float64) int {
	if epsilon <= 0 {
		epsilon = 0.1
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.05
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * epsilon * epsilon)))
}

// VertexFraction estimates the fraction of vertices of a universe of size
// n selected by the LCA, using s uniform samples.
func VertexFraction(n int, lca core.VertexLCA, s int, delta float64, seed rnd.Seed) Result {
	return vertexFractionOver(nil, n, lca, s, delta, seed)
}

// vertexFractionOver is VertexFraction with an optional oracle for
// exploration hints: the whole sample set is drawn up front (the PRG is
// untouched by queries, so the sampled vertices — and the estimate — are
// identical to the interleaved loop) and prefetched as one batch, priming
// every sampled query's first row in a single round trip on batched
// backends.
func vertexFractionOver(o oracle.Oracle, n int, lca core.VertexLCA, s int, delta float64, seed rnd.Seed) Result {
	prg := rnd.NewPRG(seed.Derive(0xe5))
	vs := make([]int, s)
	for i := range vs {
		vs[i] = prg.Intn(n)
	}
	oracle.Prefetch(o, vs...)
	hits := 0
	for _, v := range vs {
		if lca.QueryVertex(v) {
			hits++
		}
	}
	return Result{
		Fraction:   float64(hits) / float64(s),
		ErrorBound: hoeffdingRadius(s, delta),
		Samples:    s,
	}
}

// EdgeSampler provides uniform random edges of the input graph. In the
// sublinear-time literature this is the standard "random edge" oracle
// extension; concrete graphs and closed-form implicit sources implement it
// (it coincides with source.RandomEdger).
type EdgeSampler interface {
	// RandomEdge returns a uniformly random edge.
	RandomEdge(prg *rnd.PRG) (u, v int)
}

// EdgeFraction estimates the fraction of edges selected by the LCA
// (spanner density, matching density, ...), using s uniform edge samples.
func EdgeFraction(sampler EdgeSampler, lca core.EdgeLCA, s int, delta float64, seed rnd.Seed) Result {
	return edgeFractionOver(nil, sampler, lca, s, delta, seed)
}

// edgeFractionOver is EdgeFraction with an optional oracle for exploration
// hints; the sampled endpoints are prefetched together, like
// vertexFractionOver.
func edgeFractionOver(o oracle.Oracle, sampler EdgeSampler, lca core.EdgeLCA, s int, delta float64, seed rnd.Seed) Result {
	prg := rnd.NewPRG(seed.Derive(0xe6))
	us := make([]int, s)
	vs := make([]int, s)
	endpoints := make([]int, 0, 2*s)
	for i := 0; i < s; i++ {
		us[i], vs[i] = sampler.RandomEdge(prg)
		endpoints = append(endpoints, us[i], vs[i])
	}
	oracle.Prefetch(o, endpoints...)
	hits := 0
	for i := 0; i < s; i++ {
		if lca.QueryEdge(us[i], vs[i]) {
			hits++
		}
	}
	return Result{
		Fraction:   float64(hits) / float64(s),
		ErrorBound: hoeffdingRadius(s, delta),
		Samples:    s,
	}
}

// MatchingSize estimates |M| of a maximal matching LCA: each matched
// vertex contributes 1/2 an edge, so |M| = n * fraction/2. Returns the
// estimated edge count and its radius.
func MatchingSize(n int, covered core.VertexLCA, s int, delta float64, seed rnd.Seed) (size, radius float64) {
	res := VertexFraction(n, covered, s, delta, seed)
	count, rad := res.Scale(n)
	return count / 2, rad / 2
}
