package estimate

import (
	"math"
	"testing"

	"lca/internal/core"
	"lca/internal/gen"
	"lca/internal/matching"
	"lca/internal/mis"
	"lca/internal/oracle"
	"lca/internal/rnd"
	"lca/internal/spanner"
)

func TestSamplesFor(t *testing.T) {
	s := SamplesFor(0.1, 0.05)
	if s < 150 || s > 300 {
		t.Errorf("SamplesFor(0.1, 0.05) = %d, expected around 185", s)
	}
	// Degenerate inputs fall back to defaults rather than exploding.
	if SamplesFor(0, 0) <= 0 {
		t.Error("degenerate SamplesFor must stay positive")
	}
	// Tighter epsilon needs more samples.
	if SamplesFor(0.01, 0.05) <= SamplesFor(0.1, 0.05) {
		t.Error("sample count must grow as epsilon shrinks")
	}
}

func TestVertexFractionMISWithinBounds(t *testing.T) {
	g := gen.Torus(30, 30) // n=900
	lca := mis.New(oracle.New(g), 3)
	// Ground truth by exhaustive assembly.
	in, _ := core.BuildVertexSet(g, mis.New(oracle.New(g), 3))
	truth := 0
	for _, b := range in {
		if b {
			truth++
		}
	}
	trueFrac := float64(truth) / float64(g.N())
	res := VertexFraction(g.N(), lca, SamplesFor(0.05, 0.01), 0.01, 7)
	if math.Abs(res.Fraction-trueFrac) > res.ErrorBound {
		t.Errorf("estimate %.3f±%.3f missed truth %.3f", res.Fraction, res.ErrorBound, trueFrac)
	}
	count, radius := res.Scale(g.N())
	if math.Abs(count-float64(truth)) > radius {
		t.Errorf("scaled count %.0f±%.0f missed %d", count, radius, truth)
	}
}

func TestEdgeFractionSpannerDensity(t *testing.T) {
	g := gen.Complete(300)
	seed := rnd.Seed(5)
	lca := spanner.NewSpanner3Config(oracle.New(g), seed, spanner.Config{Memo: true})
	h, _ := core.BuildSubgraph(g, lca)
	trueFrac := float64(h.M()) / float64(g.M())
	// Fresh (memoized) instance for the sampled estimate.
	est := spanner.NewSpanner3Config(oracle.New(g), seed, spanner.Config{Memo: true})
	res := EdgeFraction(g, est, SamplesFor(0.05, 0.01), 0.01, 9)
	if math.Abs(res.Fraction-trueFrac) > res.ErrorBound {
		t.Errorf("spanner density estimate %.3f±%.3f missed truth %.3f",
			res.Fraction, res.ErrorBound, trueFrac)
	}
}

func TestMatchingSizeEstimate(t *testing.T) {
	g := gen.Gnp(400, 0.03, 11)
	seed := rnd.Seed(13)
	m, _ := core.BuildSubgraph(g, matching.New(oracle.New(g), seed))
	size, radius := MatchingSize(g.N(), matching.New(oracle.New(g), seed), SamplesFor(0.04, 0.01), 0.01, 17)
	if math.Abs(size-float64(m.M())) > radius {
		t.Errorf("matching size estimate %.0f±%.0f missed truth %d", size, radius, m.M())
	}
}

func TestEstimateDeterministicForSeed(t *testing.T) {
	g := gen.Torus(12, 12)
	lca := mis.New(oracle.New(g), 1)
	a := VertexFraction(g.N(), lca, 200, 0.05, 3)
	b := VertexFraction(g.N(), lca, 200, 0.05, 3)
	if a != b {
		t.Error("same seed must give identical estimates")
	}
	c := VertexFraction(g.N(), lca, 200, 0.05, 4)
	if a == c {
		t.Log("note: different sampling seeds coincided (possible)")
	}
}

func TestHoeffdingRadiusShrinks(t *testing.T) {
	if hoeffdingRadius(100, 0.05) <= hoeffdingRadius(10000, 0.05) {
		t.Error("radius must shrink with more samples")
	}
	if hoeffdingRadius(0, 0.05) != 1 {
		t.Error("zero samples means no information")
	}
}
