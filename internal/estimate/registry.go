package estimate

// Registry-generic estimation: the bridge every surface (HTTP estimate
// endpoint, Session.EstimateFraction) shares, so kind dispatch, seed
// derivation and the memoization default live in exactly one place.

import (
	"fmt"
	"hash/fnv"

	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
)

// Fraction estimates the fraction of elements (edges for an edge-kind
// algorithm, vertices for a vertex-kind one) in the algorithm's solution
// from sampled point queries, with a Hoeffding confidence radius at level
// 1-delta. The instance is built fresh over g; because the estimator
// issues many queries against it, memoization is enabled by default for
// algorithms that support it (pass memo explicitly to override). The
// sampling seed derives from seed and the algorithm name, so repeated
// calls are deterministic.
func Fraction(d *registry.Descriptor, g *graph.Graph, seed rnd.Seed, p registry.Params, samples int, delta float64) (Result, error) {
	if samples < 1 {
		return Result{}, fmt.Errorf("algorithm %q: samples must be >= 1, got %d", d.Name, samples)
	}
	if d.Kind == registry.KindLabel {
		return Result{}, fmt.Errorf("algorithm %q answers label queries; fractions are estimable for edge and vertex kinds", d.Name)
	}
	if g.N() == 0 {
		return Result{}, fmt.Errorf("algorithm %q: graph has no vertices to sample", d.Name)
	}
	inst, err := d.Build(oracle.New(g), seed, d.WithMemoDefault(p))
	if err != nil {
		return Result{}, err
	}
	sampleSeed := seed.Derive(hashName(d.Name))
	switch d.Kind {
	case registry.KindEdge:
		if g.M() == 0 {
			return Result{}, fmt.Errorf("algorithm %q: graph has no edges to sample", d.Name)
		}
		return EdgeFraction(g, inst.(core.EdgeLCA), samples, delta, sampleSeed), nil
	default: // registry.KindVertex
		return VertexFraction(g.N(), inst.(core.VertexLCA), samples, delta, sampleSeed), nil
	}
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}
