package estimate

// Registry-generic estimation: the bridge every surface (HTTP estimate
// endpoint, Session.EstimateFraction) shares, so kind dispatch, seed
// derivation and the memoization default live in exactly one place. It
// runs against any probe source — estimating over a billion-vertex
// implicit source costs the same bounded number of point queries as over
// an in-memory graph.

import (
	"fmt"
	"hash/fnv"

	"lca/internal/core"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/source"
)

// Fraction estimates the fraction of elements (edges for an edge-kind
// algorithm, vertices for a vertex-kind one) in the algorithm's solution
// from sampled point queries, with a Hoeffding confidence radius at level
// 1-delta. The instance is built fresh over src; because the estimator
// issues many queries against it, memoization is enabled by default for
// algorithms that support it (pass memo explicitly to override). The
// sampling seed derives from seed and the algorithm name, so repeated
// calls are deterministic.
//
// Edge-kind estimation needs uniform random edges, so src must implement
// the source.RandomEdger capability (in-memory graphs, implicit
// closed-form families, and network sources whose shards have it).
//
// With prefetch set, the instance is built over a prefetching exploration
// oracle and the sample set is hinted up front, so on batched network
// backends the estimator's round trips collapse; answers are identical
// either way.
func Fraction(d *registry.Descriptor, src source.Source, seed rnd.Seed, p registry.Params, samples int, delta float64, prefetch bool) (Result, error) {
	return FractionOver(d, src, seed, p, samples, delta, prefetch, nil)
}

// FractionOver is Fraction with a caller-supplied oracle wrapper applied
// to the freshly built chain before the instance is constructed. The
// serving tier threads per-tenant enforcement (probe and round-trip
// budgets) through it, so one budget covers the whole estimate — every
// sampled point query included — rather than leaking around the
// estimator. A nil wrap is Fraction exactly.
func FractionOver(d *registry.Descriptor, src source.Source, seed rnd.Seed, p registry.Params, samples int, delta float64, prefetch bool, wrap func(oracle.Oracle) oracle.Oracle) (Result, error) {
	if samples < 1 {
		return Result{}, fmt.Errorf("algorithm %q: samples must be >= 1, got %d", d.Name, samples)
	}
	if d.Kind == registry.KindLabel {
		return Result{}, fmt.Errorf("algorithm %q answers label queries; fractions are estimable for edge and vertex kinds", d.Name)
	}
	if src.N() == 0 {
		return Result{}, fmt.Errorf("algorithm %q: source has no vertices to sample", d.Name)
	}
	o := oracle.New(src)
	if prefetch {
		o = oracle.NewPrefetch(src)
	}
	if wrap != nil {
		o = wrap(o)
	}
	inst, err := d.Build(o, seed, d.WithMemoDefault(p))
	if err != nil {
		return Result{}, err
	}
	sampleSeed := seed.Derive(hashName(d.Name))
	switch d.Kind {
	case registry.KindEdge:
		sampler, ok := source.RandomEdgerOf(src)
		if !ok {
			return Result{}, fmt.Errorf("algorithm %q: source does not support random edge sampling (no RandomEdge capability)", d.Name)
		}
		if mc, known := source.EdgeCounterOf(src); known && mc.M() == 0 {
			return Result{}, fmt.Errorf("algorithm %q: source has no edges to sample", d.Name)
		}
		return edgeFractionSafe(d.Name, o, sampler, inst.(core.EdgeLCA), samples, delta, sampleSeed)
	default: // registry.KindVertex
		return vertexFractionOver(o, src.N(), inst.(core.VertexLCA), samples, delta, sampleSeed), nil
	}
}

// edgeFractionSafe converts RandomEdge panics — edgeless or effectively
// edgeless sources whose edge count is unknowable in O(1) — into errors,
// so servers answer 4xx envelopes instead of dying mid-request. Those
// panics are string payloads by convention; anything else (a runtime
// error, a network source's typed probe failure) is a genuine defect or
// a different contract and must keep propagating, not read as a client
// fault.
func edgeFractionSafe(name string, o oracle.Oracle, sampler EdgeSampler, lca core.EdgeLCA, samples int, delta float64, seed rnd.Seed) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			msg, ok := r.(string)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("algorithm %q: edge sampling failed: %s", name, msg)
		}
	}()
	return edgeFractionOver(o, sampler, lca, samples, delta, seed), nil
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}
