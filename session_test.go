package lca_test

import (
	"errors"
	"strings"
	"testing"

	"lca"
)

func sessionGraph() *lca.Graph { return lca.Gnp(150, 0.08, 11) }

func TestSessionPointQueries(t *testing.T) {
	g := sessionGraph()
	s := lca.NewSession(g, lca.WithSeed(7))
	e := g.Edges()[0]
	in, err := s.Edge("spanner3", e.U, e.V)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the flat constructor for the same (graph, seed).
	if want := lca.NewSpanner3(lca.NewOracle(g), 7).QueryEdge(e.U, e.V); in != want {
		t.Fatalf("Session.Edge = %v, flat constructor = %v", in, want)
	}
	if _, err := s.Vertex("mis", 3); err != nil {
		t.Fatal(err)
	}
	c, err := s.Label("coloring", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0 || c > g.MaxDegree() {
		t.Fatalf("color %d outside [0, Delta]", c)
	}
	ps, err := s.ProbeStats("spanner3")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Total() == 0 {
		t.Error("no probes accounted for spanner3")
	}
	if _, err := s.ProbeStats("spannr3"); err == nil {
		t.Error("typo'd algorithm name accepted by ProbeStats")
	}
}

func TestSessionAliasSharesInstance(t *testing.T) {
	g := sessionGraph()
	s := lca.NewSession(g, lca.WithSeed(7))
	e := g.Edges()[0]
	if _, err := s.Edge("3", e.U, e.V); err != nil {
		t.Fatal(err)
	}
	// The alias query must be accounted under the canonical name: one
	// instance, one probe account, regardless of which name is used.
	canon, err := s.ProbeStats("spanner3")
	if err != nil {
		t.Fatal(err)
	}
	if canon.Total() == 0 {
		t.Error("alias query not accounted under canonical name")
	}
	aliased, err := s.ProbeStats("3")
	if err != nil {
		t.Fatal(err)
	}
	if aliased != canon {
		t.Error("alias and canonical probe stats differ")
	}
}

func TestSessionConsistentAcrossSessions(t *testing.T) {
	g := sessionGraph()
	s1 := lca.NewSession(g, lca.WithSeed(42))
	s2 := lca.NewSession(g, lca.WithSeed(42))
	for i, e := range g.Edges() {
		if i >= 25 {
			break
		}
		a, err1 := s1.Edge("matching", e.U, e.V)
		b, err2 := s2.Edge("matching", e.U, e.V)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("sessions with equal seeds disagree on edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	g := sessionGraph()
	s := lca.NewSession(g)
	if _, err := s.Edge("nosuch", 0, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.Edge("mis", 0, 1); err == nil || !strings.Contains(err.Error(), "vertex") {
		t.Errorf("kind mismatch not reported: %v", err)
	}
	if _, err := s.Vertex("mis", -1); err == nil {
		t.Error("negative vertex accepted")
	}
	if _, err := s.Vertex("mis", g.N()); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, _, err := s.BuildSubgraph("coloring"); err == nil {
		t.Error("BuildSubgraph on a label-kind algorithm accepted")
	}
	// Non-edges are rejected: the LCA contract only defines answers for
	// input edges (matches the HTTP surface's 400).
	nonU, nonV := -1, -1
outer:
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				nonU, nonV = u, v
				break outer
			}
		}
	}
	if nonU >= 0 {
		if _, err := s.Edge("matching", nonU, nonV); err == nil {
			t.Error("non-edge query accepted")
		}
	}
}

func TestSessionParams(t *testing.T) {
	g := lca.Torus(12, 12)
	// k is declared by spannerk and silently irrelevant to mis: one
	// session can carry parameters for several algorithms.
	s := lca.NewSession(g, lca.WithSeed(3), lca.WithParam("k", 2), lca.WithParam("memo", true))
	h, _, err := s.BuildSubgraph("spannerk")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lca.SpannerKConfig{Config: lca.SpannerConfig{Memo: true}}
	want, _ := lca.BuildSubgraph(g, lca.NewSpannerKConfig(lca.NewOracle(g), 2, 3, cfg))
	if h.M() != want.M() {
		t.Fatalf("session build has %d edges, flat build %d", h.M(), want.M())
	}
	if _, err := s.Vertex("mis", 0); err != nil {
		t.Fatalf("undeclared session param leaked into mis: %v", err)
	}
	// A mistyped value for a declared param is an error.
	bad := lca.NewSession(g, lca.WithParam("k", "two"))
	if _, err := bad.Edge("spannerk", 0, 1); err == nil {
		t.Error("mistyped parameter accepted")
	}
}

func TestSessionBuildMatchesSerial(t *testing.T) {
	g := sessionGraph()
	s := lca.NewSession(g, lca.WithSeed(9), lca.WithWorkers(4))
	h, stats, err := s.BuildSubgraph("spanner3")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != g.M() {
		t.Fatalf("stats cover %d queries, want %d", stats.Queries, g.M())
	}
	serial, _ := lca.BuildSubgraph(g, lca.NewSpanner3(lca.NewOracle(g), 9))
	if h.M() != serial.M() {
		t.Fatalf("parallel session build %d edges, serial %d", h.M(), serial.M())
	}
	for _, e := range serial.Edges() {
		if !h.HasEdge(e.U, e.V) {
			t.Fatalf("edge (%d,%d) missing from session build", e.U, e.V)
		}
	}
	in, _, err := s.BuildVertexSet("mis")
	if err != nil {
		t.Fatal(err)
	}
	if err := lca.VerifyMaximalIndependentSet(g, in); err != nil {
		t.Fatal(err)
	}
	labels, _, err := s.BuildLabels("coloring")
	if err != nil {
		t.Fatal(err)
	}
	if err := lca.VerifyColoring(g, labels, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestSessionProbeBudget(t *testing.T) {
	g := sessionGraph()
	// A one-probe budget must trip on any real query.
	s := lca.NewSession(g, lca.WithSeed(5), lca.WithProbeBudget(1))
	if _, err := s.Vertex("mis", 0); !errors.Is(err, lca.ErrProbeBudget) {
		t.Fatalf("want ErrProbeBudget, got %v", err)
	}
	if _, _, err := s.BuildVertexSet("mis"); !errors.Is(err, lca.ErrProbeBudget) {
		t.Fatalf("budgeted build: want ErrProbeBudget, got %v", err)
	}
	// A generous budget must not trip, and answers must match the
	// unbudgeted session.
	roomy := lca.NewSession(g, lca.WithSeed(5), lca.WithProbeBudget(1_000_000))
	free := lca.NewSession(g, lca.WithSeed(5))
	for v := 0; v < 20; v++ {
		a, err := roomy.Vertex("mis", v)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := free.Vertex("mis", v)
		if a != b {
			t.Fatalf("budgeted and unbudgeted sessions disagree on vertex %d", v)
		}
	}
}

func TestSessionEstimate(t *testing.T) {
	g := sessionGraph()
	s := lca.NewSession(g, lca.WithSeed(13))
	res, err := s.EstimateFraction("mis", 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction < 0 || res.Fraction > 1 || res.Samples != 200 {
		t.Fatalf("estimate %+v", res)
	}
	again, err := s.EstimateFraction("mis", 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction != again.Fraction {
		t.Error("repeated estimates are not deterministic")
	}
	if _, err := s.EstimateFraction("spanner3", 100, 0.05); err != nil {
		t.Fatalf("edge-kind estimate: %v", err)
	}
	if _, err := s.EstimateFraction("coloring", 100, 0.05); err == nil {
		t.Error("label-kind estimate accepted")
	}
	if _, err := s.EstimateFraction("mis", 0, 0.05); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestSessionAlgos(t *testing.T) {
	s := lca.NewSession(sessionGraph())
	algos := s.Algos()
	if len(algos) < 7 {
		t.Fatalf("only %d algorithms discoverable", len(algos))
	}
	kinds := map[string]string{}
	for _, a := range algos {
		kinds[a.Name] = a.Kind
	}
	if kinds["spanner3"] != "edge" || kinds["mis"] != "vertex" || kinds["coloring"] != "label" {
		t.Fatalf("unexpected catalog %v", kinds)
	}
}
