package lca_test

import (
	"fmt"
	"testing"

	lca "lca"
)

func TestProbeCountCheck(t *testing.T) {
	for _, algo := range []string{"mis", "matching", "coloring"} {
		src, err := lca.OpenSource("grid:side=40", 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src, lca.WithSeed(42))
		n := src.N()
		switch algo {
		case "mis":
			for v := 0; v < n; v += 3 {
				if _, err := s.QueryVertex("mis", v); err != nil {
					t.Fatal(err)
				}
			}
		case "matching":
			for v := 0; v < n; v += 3 {
				if _, err := s.QueryVertex("matching", v); err != nil {
					t.Fatal(err)
				}
			}
		case "coloring":
			for v := 0; v < n; v += 3 {
				if _, err := s.QueryLabel("coloring", v); err != nil {
					t.Fatal(err)
				}
			}
		}
		st, _ := s.ProbeStats(algo)
		fmt.Printf("%s: queries=%d sum=%d mean=%.2f max=%d\n", algo, st.Queries, st.SumTotal, st.Mean(), st.MaxTotal)
		s.Close()
	}
}
