package lca_test

import (
	"testing"

	"lca"
)

// TestProbeCountCheck sanity-checks the sparse-regime LCAs' probe
// accounting through the Session API: point queries over an implicit grid
// must spend probes (the accounting is wired) while staying strongly
// sublinear in n per query (the locality promise).
func TestProbeCountCheck(t *testing.T) {
	for _, algo := range []struct{ name, kind string }{
		{"mis", "vertex"},
		{"matching", "edge"},
		{"coloring", "label"},
	} {
		src, err := lca.OpenSource("grid:rows=40,cols=40", 7)
		if err != nil {
			t.Fatal(err)
		}
		s := lca.NewSessionFromSource(src, lca.WithSeed(42))
		n := src.N()
		queries := 0
		for v := 0; v < n; v += 3 {
			switch algo.kind {
			case "vertex":
				_, err = s.Vertex(algo.name, v)
			case "edge":
				w := src.Neighbor(v, 0)
				if w < 0 {
					continue
				}
				_, err = s.Edge(algo.name, v, w)
			case "label":
				_, err = s.Label(algo.name, v)
			}
			if err != nil {
				t.Fatalf("%s(%d): %v", algo.name, v, err)
			}
			queries++
		}
		st, err := s.ProbeStats(algo.name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total() == 0 {
			t.Fatalf("%s: %d queries spent no probes; accounting is broken", algo.name, queries)
		}
		if mean := float64(st.Total()) / float64(queries); mean > float64(n)/4 {
			t.Fatalf("%s: mean %.1f probes/query on n=%d is not local", algo.name, mean, n)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
