// Command lcagen generates synthetic graph workloads for the cmd/
// binaries, in edge-list text format or CSR binary format (-format csr) —
// the latter is the save-once-probe-cold input of the disk-backed source
// backend (lcaserve -graph csr:g.csr).
//
// Usage:
//
//	lcagen -kind gnp -n 1000 -p 0.05 [-seed 7] [-out graph.txt]
//	lcagen -kind gnp -n 100000 -p 0.001 -format csr -out g.csr
//	lcagen -kind regular -n 1000 -d 4
//	lcagen -kind powerlaw -n 1000 -beta 2.5 -avgdeg 8
//	lcagen -kind torus -rows 32 -cols 32
//	lcagen -kind clusters -n 1000 -k 4 -pin 0.2 -pout 0.01
//	lcagen -kind densecore -n 1000 -core 100 -avgdeg 5
//	lcagen -kind complete -n 100
package main

import (
	"flag"
	"fmt"
	"os"

	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/rnd"
)

func main() {
	var (
		kind   = flag.String("kind", "gnp", "gnp, regular, powerlaw, torus, grid, clusters, densecore, complete")
		n      = flag.Int("n", 1000, "number of vertices")
		p      = flag.Float64("p", 0.01, "edge probability (gnp)")
		d      = flag.Int("d", 4, "degree (regular)")
		beta   = flag.Float64("beta", 2.5, "power-law exponent (powerlaw)")
		avgDeg = flag.Float64("avgdeg", 8, "average degree (powerlaw, densecore periphery)")
		rows   = flag.Int("rows", 32, "rows (torus, grid)")
		cols   = flag.Int("cols", 32, "cols (torus, grid)")
		k      = flag.Int("k", 4, "communities (clusters)")
		pin    = flag.Float64("pin", 0.2, "intra-community probability (clusters)")
		pout   = flag.Float64("pout", 0.01, "inter-community probability (clusters)")
		core   = flag.Int("core", 100, "core size (densecore)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "edgelist", "output format: edgelist (text) or csr (binary, for cold probing)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	s := rnd.Seed(*seed)
	switch *kind {
	case "gnp":
		g = gen.Gnp(*n, *p, s)
	case "regular":
		g, err = gen.RandomRegular(*n, *d, s)
	case "powerlaw":
		g = gen.ChungLu(*n, *beta, *avgDeg, s)
	case "torus":
		g = gen.Torus(*rows, *cols)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "clusters":
		g = gen.PlantedClusters(*n, *k, *pin, *pout, s)
	case "densecore":
		g = gen.DenseCore(*n, *core, *avgDeg, s)
	case "complete":
		g = gen.Complete(*n)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcagen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lcagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		err = graph.WriteEdgeList(w, g)
	case "csr":
		err = graph.WriteCSR(w, g)
	default:
		err = fmt.Errorf("unknown format %q (want edgelist or csr)", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lcagen: %s n=%d m=%d maxdeg=%d (%s)\n", *kind, g.N(), g.M(), g.MaxDegree(), *format)
}
