// Command lcaserve serves LCA queries over HTTP: the deployment shape of
// the model. The process holds only probe-source handles and a seed; every
// request is answered by a fresh LCA instance, so replicas sharing the
// seed serve consistent slices of the same global solution — including
// over sources too large to ever hold in memory.
//
// Usage:
//
//	lcaserve -graph g.txt -addr :8080 -seed 2019
//	lcaserve -graph ring:n=1000000000            # implicit billion-vertex source
//	lcaserve -graph csr:web.csr                  # disk-backed CSR, probed cold
//	lcaserve -graph remote:http://shard0:8080    # probe another lcaserve
//	lcaserve -graph sharded:remote:http://a:8080,remote:http://b:8080
//	lcaserve -graph ring:n=1e6 -tenants tenants.json -drain 15s
//
// -graph takes a source spec: a family form (ring:n=N, torus:rows=R,cols=C,
// circulant:n=N,d=D, blockrandom:n=N,d=D, csr:path, edgelist:path,
// remote:URL, sharded:spec;spec;...) or a bare edge-list file path.
//
// -tenants points at a JSON array of tenant entries
// ({"name","token","probe_budget","round_trip_budget","qps","burst"});
// when set, the query plane requires a tenant token on every request and
// enforces the per-tenant budgets (429 on exhaustion). Without it the
// server is open, the trusted-network default.
//
// On SIGINT/SIGTERM the server drains: in-flight requests get up to
// -drain to complete while new connections are refused, then named
// sources are closed and the process exits 0.
//
// Every instance also answers the probe wire protocol (GET/POST /probe,
// GET /probe/meta), so replicas compose: one lcaserve can front the graph
// held by another, and a sharded: spec consistent-hashes probes across a
// fleet of them.
//
// Endpoints (registry-generic: every algorithm in /algos is queryable
// through its kind's route, with tunable parameters as query parameters):
//
//	GET  /healthz
//	GET  /metrics[?format=text]               serving-tier counters and histograms
//	GET  /graph[?source=NAME]
//	GET  /algos
//	GET  /sources                             discovery: open sources + spec families
//	POST /sources?name=NAME&spec=SPEC         open another source at runtime
//	GET  /edge/{algo}?u=U&v=V[&param=...]     e.g. /edge/spannerk?u=3&v=9&k=4
//	GET  /vertex/{algo}?v=V[&param=...]       e.g. /vertex/mis?v=7
//	GET  /label/{algo}?v=V[&param=...]        e.g. /label/coloring?v=7
//	GET  /estimate/{algo}?samples=S[&param=...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lca/internal/rnd"
	"lca/internal/serve"
	"lca/internal/source"
)

func main() {
	var (
		graphSpec   = flag.String("graph", "", "graph source spec: family:args (ring:n=N, csr:path, ...) or an edge-list file path (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 2019, "random seed shared by all replicas")
		infoCap     = flag.Int("graphcap", serve.DefaultGraphInfoCap, "max n for which /graph may probe O(n) summaries of capability-less sources (413 above)")
		tenantsPath = flag.String("tenants", "", "JSON tenant config; when set, the query plane requires a tenant token and enforces per-tenant budgets")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *graphSpec == "" {
		fmt.Fprintln(os.Stderr, "lcaserve: -graph is required; source families:")
		for _, f := range source.Families() {
			fmt.Fprintln(os.Stderr, "  ", f.Usage)
		}
		os.Exit(2)
	}
	src, err := source.Parse(*graphSpec, rnd.Seed(*seed))
	if err != nil {
		log.Fatalf("lcaserve: %v", err)
	}
	desc := fmt.Sprintf("n=%d", src.N())
	if mc, ok := source.EdgeCounterOf(src); ok {
		desc += fmt.Sprintf(" m=%d", mc.M())
	}
	if db, ok := source.DegreeBounderOf(src); ok {
		desc += fmt.Sprintf(" maxdeg=%d", db.MaxDegree())
	}
	if health, ok := source.HealthOf(src); ok {
		desc += fmt.Sprintf(" shards=%d (health on /sources and /probe/meta)", len(health))
	}

	opts := []serve.Option{serve.WithGraphInfoCap(*infoCap)}
	if *tenantsPath != "" {
		tenants, err := serve.LoadTenantsFile(*tenantsPath)
		if err != nil {
			log.Fatalf("lcaserve: %v", err)
		}
		opts = append(opts, serve.WithTenants(tenants...))
		desc += fmt.Sprintf(" tenants=%d", len(tenants))
	}
	lca := serve.NewFromSource(src, *graphSpec, rnd.Seed(*seed), opts...)

	log.Printf("lcaserve: source %q %s, seed=%d, listening on %s", *graphSpec, desc, *seed, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           lca.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("lcaserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal during the drain kills the process the default way
	log.Printf("lcaserve: shutting down, draining for up to %s", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("lcaserve: drain incomplete: %v", err)
	}
	if err := lca.Close(); err != nil {
		log.Printf("lcaserve: closing sources: %v", err)
	}
	log.Printf("lcaserve: bye")
}
