// Command lcaserve serves LCA queries over HTTP: the deployment shape of
// the model. The process holds only the graph and a seed; every request is
// answered by a fresh LCA instance, so replicas sharing the seed serve
// consistent slices of the same global solution.
//
// Usage:
//
//	lcaserve -graph g.txt -addr :8080 -seed 2019
//
// Endpoints (registry-generic: every algorithm in /algos is queryable
// through its kind's route, with tunable parameters as query parameters):
//
//	GET /healthz
//	GET /graph
//	GET /algos
//	GET /edge/{algo}?u=U&v=V[&param=...]     e.g. /edge/spannerk?u=3&v=9&k=4
//	GET /vertex/{algo}?v=V[&param=...]       e.g. /vertex/mis?v=7
//	GET /label/{algo}?v=V[&param=...]        e.g. /label/coloring?v=7
//	GET /estimate/{algo}?samples=S[&param=...]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"lca/internal/graph"
	"lca/internal/rnd"
	"lca/internal/serve"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 2019, "random seed shared by all replicas")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "lcaserve: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatalf("lcaserve: %v", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		log.Fatalf("lcaserve: %v", err)
	}
	log.Printf("lcaserve: graph n=%d m=%d maxdeg=%d, seed=%d, listening on %s",
		g.N(), g.M(), g.MaxDegree(), *seed, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(g, rnd.Seed(*seed)).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
