// Command lcaserve serves LCA queries over HTTP: the deployment shape of
// the model. The process holds only probe-source handles and a seed; every
// request is answered by a fresh LCA instance, so replicas sharing the
// seed serve consistent slices of the same global solution — including
// over sources too large to ever hold in memory.
//
// Usage:
//
//	lcaserve -graph g.txt -addr :8080 -seed 2019
//	lcaserve -graph ring:n=1000000000            # implicit billion-vertex source
//	lcaserve -graph csr:web.csr                  # disk-backed CSR, probed cold
//	lcaserve -graph remote:http://shard0:8080    # probe another lcaserve
//	lcaserve -graph sharded:remote:http://a:8080,remote:http://b:8080
//	lcaserve -graph ring:n=1e6 -tenants tenants.json -drain 15s
//	lcaserve -graph ring:n=1e6 -trace-sample 100 -trace-slow 250ms -log-format json
//
// -graph takes a source spec: a family form (ring:n=N, torus:rows=R,cols=C,
// circulant:n=N,d=D, blockrandom:n=N,d=D, csr:path, edgelist:path,
// remote:URL, sharded:spec;spec;...) or a bare edge-list file path.
//
// -tenants points at a JSON array of tenant entries
// ({"name","token","probe_budget","round_trip_budget","qps","burst"});
// when set, the query plane requires a tenant token on every request and
// enforces the per-tenant budgets (429 on exhaustion). Without it the
// server is open, the trusted-network default.
//
// Observability flags:
//
//   - -trace-sample N traces 1 in N queries head-sampled (0 disables);
//     ?trace=1 on any query forces a trace regardless.
//   - -trace-slow DUR and -trace-slow-probes N retain a full span tree in
//     the slow ring for every query over either threshold, even when the
//     sampler did not pick it.
//   - -log-format text|json selects the structured-log encoding; request
//     lines carry request_id, tenant, kind, probes, round_trips and
//     trace_id when sampled.
//   - -debug-addr starts a second listener — kept off the query port so
//     it can stay firewalled — with net/http/pprof under /debug/pprof/
//     and a /debug/vars JSON snapshot of runtime stats (goroutines,
//     heap, GC).
//
// Trust-plane flags:
//
//   - -attest commits to the graph at startup (O(n+m) hashing, once):
//     the Merkle root is advertised in /probe/meta and probe answers
//     carry row proofs under attest=1. Clients pin the root with
//     remote:URL#root=HEX and verify every answer.
//   - -audit-log FILE with -audit-key SECRET appends one HMAC-chained
//     JSON line per executed query flight; lcaverify -replay FILE
//     -audit-key SECRET re-executes the log offline bit-for-bit. The
//     file is truncated at startup: one signature chain per run.
//   - -chaos lie turns this replica into the attack the trust plane
//     exists to catch: every neighbor answer is corrupted while the
//     commitment and row proofs stay honest. Testing only.
//
// On SIGINT/SIGTERM the server drains: in-flight requests get up to
// -drain to complete while new connections are refused, then named
// sources are closed and the process exits 0.
//
// Every instance also answers the probe wire protocol (GET/POST /probe,
// GET /probe/meta), so replicas compose: one lcaserve can front the graph
// held by another, and a sharded: spec consistent-hashes probes across a
// fleet of them. Traced clients propagate X-LCA-Trace on probe requests
// and this server's shard-side spans ride back in the probe response.
//
// Endpoints (registry-generic: every algorithm in /algos is queryable
// through its kind's route, with tunable parameters as query parameters):
//
//	GET  /healthz
//	GET  /metrics[?format=text]               serving-tier counters and histograms
//	GET  /traces[?slow=1]                     recently retained span trees
//	GET  /traces/{id}                         one span tree by trace id
//	GET  /graph[?source=NAME]
//	GET  /algos
//	GET  /sources                             discovery: open sources + spec families
//	POST /sources?name=NAME&spec=SPEC         open another source at runtime
//	GET  /edge/{algo}?u=U&v=V[&param=...]     e.g. /edge/spannerk?u=3&v=9&k=4
//	GET  /vertex/{algo}?v=V[&param=...]       e.g. /vertex/mis?v=7
//	GET  /label/{algo}?v=V[&param=...]        e.g. /label/coloring?v=7
//	GET  /estimate/{algo}?samples=S[&param=...]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lca/internal/rnd"
	"lca/internal/serve"
	"lca/internal/source"
)

func main() {
	var (
		graphSpec   = flag.String("graph", "", "graph source spec: family:args (ring:n=N, csr:path, ...) or an edge-list file path (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 2019, "random seed shared by all replicas")
		infoCap     = flag.Int("graphcap", serve.DefaultGraphInfoCap, "max n for which /graph may probe O(n) summaries of capability-less sources (413 above)")
		tenantsPath = flag.String("tenants", "", "JSON tenant config; when set, the query plane requires a tenant token and enforces per-tenant budgets")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
		logFormat   = flag.String("log-format", "text", "structured-log encoding: text or json")
		debugAddr   = flag.String("debug-addr", "", "listen address for the pprof/debug plane (/debug/pprof/, /debug/vars); empty disables it")
		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N queries into the trace ring (0 disables; ?trace=1 always forces)")
		traceSlow   = flag.Duration("trace-slow", 0, "retain a span tree for every query slower than this (0 disables)")
		slowProbes  = flag.Uint64("trace-slow-probes", 0, "retain a span tree for every query issuing more than this many probes (0 disables)")
		attestFlag  = flag.Bool("attest", false, "commit to the graph at startup (O(n+m) hashing): advertise the Merkle root in /probe/meta and serve row proofs under attest=1")
		auditPath   = flag.String("audit-log", "", "write the signed query-audit log (JSON lines, HMAC-chained) to this file; truncated at startup — one chain per run")
		auditKey    = flag.String("audit-key", "", "secret keying the audit-log HMAC chain (lcaverify -replay needs the same one)")
		chaos       = flag.String("chaos", "", "fault injection for trust-plane drills: 'lie' corrupts every neighbor answer while proofs stay honest (testing only)")
	)
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcaserve: %v\n", err)
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
	if *graphSpec == "" {
		fmt.Fprintln(os.Stderr, "lcaserve: -graph is required; source families:")
		for _, f := range source.Families() {
			fmt.Fprintln(os.Stderr, "  ", f.Usage)
		}
		os.Exit(2)
	}
	src, err := source.Parse(*graphSpec, rnd.Seed(*seed))
	if err != nil {
		fatal(err)
	}
	info := []any{"source", *graphSpec, "seed", *seed, "n", src.N()}
	if *attestFlag {
		att := source.NewAttested(src)
		src = att
		info = append(info, "commitment", att.Commitment().String())
	}
	switch *chaos {
	case "":
	case "lie":
		src = &lyingSource{inner: src}
		logger.Warn("chaos injection active: this replica lies on every neighbor answer", "mode", *chaos)
	default:
		fatal(fmt.Errorf("-chaos %q: want lie", *chaos))
	}
	if mc, ok := source.EdgeCounterOf(src); ok {
		info = append(info, "m", mc.M())
	}
	if db, ok := source.DegreeBounderOf(src); ok {
		info = append(info, "maxdeg", db.MaxDegree())
	}
	if health, ok := source.HealthOf(src); ok {
		info = append(info, "shards", len(health))
	}

	opts := []serve.Option{
		serve.WithGraphInfoCap(*infoCap),
		serve.WithLogger(logger),
		serve.WithTraceSample(*traceSample),
		serve.WithSlowQuery(*traceSlow, *slowProbes),
	}
	if *tenantsPath != "" {
		tenants, err := serve.LoadTenantsFile(*tenantsPath)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, serve.WithTenants(tenants...))
		info = append(info, "tenants", len(tenants))
	}
	if *auditPath != "" {
		f, err := os.Create(*auditPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts = append(opts, serve.WithAuditLog(f, *auditKey))
		info = append(info, "audit_log", *auditPath)
	}
	lca := serve.NewFromSource(src, *graphSpec, rnd.Seed(*seed), opts...)

	logger.Info("listening", append([]any{"addr", *addr}, info...)...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           lca.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		// The debug plane is best-effort: a bind failure is logged, not
		// fatal, and shutdown does not drain it.
		dbg := &http.Server{Addr: *debugAddr, Handler: debugMux(), ReadHeaderTimeout: 5 * time.Second}
		logger.Info("debug plane listening", "addr", *debugAddr)
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug plane", "error", err.Error())
			}
		}()
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal during the drain kills the process the default way
	logger.Info("shutting down", "drain", drain.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("drain incomplete", "error", err.Error())
	}
	if err := lca.Close(); err != nil {
		logger.Warn("closing sources", "error", err.Error())
	}
	logger.Info("bye")
}

// newLogger builds the process logger from -log-format. Logs go to
// stderr either way; json is the choice for log pipelines, text for
// humans tailing a terminal.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

// debugMux is the pprof/debug plane: a separate mux on a separate
// listener so profiling endpoints never share a port (or a firewall
// rule) with the query plane. pprof handlers are registered explicitly —
// the net/http/pprof side effect only touches http.DefaultServeMux,
// which this process never serves.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/vars", handleDebugVars)
	return mux
}

// handleDebugVars is a /debug/vars in the expvar spirit without the
// expvar global registry: one JSON snapshot of the runtime stats a
// first-response runbook asks for — goroutine count, heap shape, GC
// cadence.
func handleDebugVars(w http.ResponseWriter, _ *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"goroutines":         runtime.NumGoroutine(),
		"heap_alloc_bytes":   ms.HeapAlloc,
		"heap_sys_bytes":     ms.HeapSys,
		"heap_objects":       ms.HeapObjects,
		"stack_inuse_bytes":  ms.StackInuse,
		"next_gc_bytes":      ms.NextGC,
		"gc_runs":            ms.NumGC,
		"gc_pause_total_ns":  ms.PauseTotalNs,
		"last_gc_unix_ns":    ms.LastGC,
		"mallocs_cumulative": ms.Mallocs,
	})
}
