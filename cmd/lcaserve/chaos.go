package main

// Fault injection for trust-plane drills (-chaos). A lying replica is
// the attack the attestation layer exists to catch: it answers probes
// with corrupted neighbors while its meta plane — commitment included —
// stays honest, so clients that do not verify proofs accept garbage
// silently and clients that do (remote:URL#root=HEX) turn every lie
// into ErrAttestation and route around this replica.

import (
	"lca/internal/rnd"
	"lca/internal/source"
)

// lyingSource corrupts every neighbor answer (scalar and rowfull alike)
// by rotating it one vertex forward; degrees and the vertex count stay
// honest, so the lie survives casual inspection. Placed OUTSIDE any
// Attested wrapper it forwards the inner commitment and row proofs
// untouched: the served proofs are honest, the served answers are not —
// exactly the mismatch the client-side cross-check detects.
type lyingSource struct {
	inner source.Source
}

var _ source.CapSource = (*lyingSource)(nil)

func (l *lyingSource) N() int { return l.inner.N() }

func (l *lyingSource) Degree(v int) int { return l.inner.Degree(v) }

func (l *lyingSource) Neighbor(v, i int) int { return l.lie(l.inner.Neighbor(v, i)) }

func (l *lyingSource) Adjacency(u, v int) int { return l.inner.Adjacency(u, v) }

// lie rotates a valid vertex id one forward; -1 answers stay -1 so the
// corruption never trips ordinary range validation.
func (l *lyingSource) lie(w int) int {
	if w < 0 {
		return w
	}
	return (w + 1) % l.inner.N()
}

// Caps forwards the inner capabilities, corrupting the row-fetch plane
// the same way as scalar neighbors and passing the Attestor through
// honestly.
func (l *lyingSource) Caps() source.Caps {
	var c source.Caps
	if ec, ok := source.EdgeCounterOf(l.inner); ok {
		c.M = ec.M
	}
	if db, ok := source.DegreeBounderOf(l.inner); ok {
		c.MaxDegree = db.MaxDegree
	}
	if re, ok := source.RandomEdgerOf(l.inner); ok {
		c.RandomEdge = func(prg *rnd.PRG) (int, int) { return re.RandomEdge(prg) }
	}
	if rf, ok := source.RowFetcherOf(l.inner); ok {
		c.FetchRows = func(vs []int) ([][]int, error) {
			rows, err := rf.FetchRows(vs)
			for _, row := range rows {
				for i := range row {
					row[i] = l.lie(row[i])
				}
			}
			return rows, err
		}
	}
	if at, ok := source.AttestorOf(l.inner); ok {
		c.Attest = func() source.Attestor { return at }
	}
	return c
}

// Close forwards to the inner source when it holds resources.
func (l *lyingSource) Close() error {
	if c, ok := l.inner.(source.Closer); ok {
		return c.Close()
	}
	return nil
}
