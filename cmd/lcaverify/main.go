// Command lcaverify materializes an LCA's global solution by querying every
// element and verifies its invariants — the consistency audit that the
// theory promises and a deployment never runs.
//
// Usage:
//
//	lcaverify -graph g.txt -alg 3            # 3-spanner: stretch+size
//	lcaverify -graph g.txt -alg k -k 3       # O(k^2): connectivity+stretch
//	lcaverify -graph g.txt -alg mis          # MIS: independence+maximality
//	lcaverify -graph g.txt -alg matching     # matching: validity+maximality
//	lcaverify -graph g.txt -alg coloring     # coloring: properness
package main

import (
	"flag"
	"fmt"
	"os"

	"lca/internal/coloring"
	"lca/internal/core"
	"lca/internal/graph"
	"lca/internal/matching"
	"lca/internal/mis"
	"lca/internal/oracle"
	"lca/internal/rnd"
	"lca/internal/spanner"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		alg       = flag.String("alg", "3", "3, 5, k, sparse, mis, matching, coloring")
		k         = flag.Int("k", 3, "stretch parameter for -alg k")
		seed      = flag.Uint64("seed", 2019, "random seed")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "lcaverify: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail(err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	s := rnd.Seed(*seed)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d | alg=%s seed=%d\n", g.N(), g.M(), g.MaxDegree(), *alg, *seed)

	switch *alg {
	case "3", "5", "k", "sparse":
		var lca core.EdgeLCA
		var stretch int
		memo := spanner.Config{Memo: true}
		switch *alg {
		case "3":
			lca, stretch = spanner.NewSpanner3Config(oracle.New(g), s, memo), 3
		case "5":
			lca, stretch = spanner.NewSpanner5Config(oracle.New(g), s, memo), 5
		case "k":
			lca, stretch = spanner.NewSpannerKConfig(oracle.New(g), *k, s, spanner.KConfig{Config: memo}), 0
		case "sparse":
			lca, stretch = spanner.NewSpannerKConfig(oracle.New(g), kLog(g.N()), s, spanner.KConfig{Config: memo}), 0
		}
		h, stats := core.BuildSubgraph(g, lca)
		fmt.Printf("assembled spanner: %d of %d edges (%.1f%%); %s\n",
			h.M(), g.M(), 100*float64(h.M())/float64(g.M()), stats.String())
		if err := core.VerifySubgraphOf(g, h); err != nil {
			fail(err)
		}
		if err := core.VerifyConnectivityPreserved(g, h); err != nil {
			fail(err)
		}
		fmt.Println("connectivity: preserved on every component")
		if stretch > 0 {
			rep := core.VerifyStretchSampled(g, h, stretch, 5000, s)
			if rep.Violations > 0 {
				fail(fmt.Errorf("stretch violations: %d/%d (max %d)", rep.Violations, rep.Checked, rep.MaxStretch))
			}
			fmt.Printf("stretch: <= %d on %d checked edges (max observed %d, mean %.2f)\n",
				stretch, rep.Checked, rep.MaxStretch, rep.MeanStretch)
		} else {
			max := core.ExactMaxStretch(g, h)
			fmt.Printf("stretch: max observed %d (bound O(k^2) = O(%d))\n", max, (*k)*(*k))
		}
	case "mis":
		lca := mis.New(oracle.New(g), s)
		in, stats := core.BuildVertexSet(g, lca)
		if err := core.VerifyMaximalIndependentSet(g, in); err != nil {
			fail(err)
		}
		count := 0
		for _, b := range in {
			if b {
				count++
			}
		}
		fmt.Printf("MIS: %d vertices, independent and maximal; %s\n", count, stats.String())
	case "matching":
		lca := matching.New(oracle.New(g), s)
		m, stats := core.BuildSubgraph(g, lca)
		if err := core.VerifyMaximalMatching(g, m); err != nil {
			fail(err)
		}
		fmt.Printf("matching: %d edges, valid and maximal; %s\n", m.M(), stats.String())
	case "coloring":
		lca := coloring.New(oracle.New(g), s)
		colors, stats := core.BuildLabels(g, lca)
		if err := core.VerifyColoring(g, colors, g.MaxDegree()+1); err != nil {
			fail(err)
		}
		used := map[int]bool{}
		for _, c := range colors {
			used[c] = true
		}
		fmt.Printf("coloring: proper with %d colors (Delta+1 = %d); %s\n", len(used), g.MaxDegree()+1, stats.String())
	default:
		fail(fmt.Errorf("unknown -alg %q", *alg))
	}
	fmt.Println("verification: PASS")
}

func kLog(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lcaverify:", err)
	os.Exit(1)
}
