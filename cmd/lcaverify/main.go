// Command lcaverify materializes an LCA's global solution by querying every
// element and verifies its invariants — the consistency audit that the
// theory promises and a deployment never runs.
//
// Dispatch is registry-generic: any registered algorithm is verifiable by
// name with no edits here. The harness is selected by the algorithm's
// query kind (edge → subgraph assembly, vertex → set assembly, label →
// labeling assembly) and the invariant check is the one the algorithm's
// descriptor ships.
//
// -graph takes a source spec — a bare edge-list path, or any family the
// source layer understands (ring:n=10000, csr:g.csr, blockrandom:n=5000,d=6,
// ...). Verification materializes the full solution, so non-materialized
// sources are first probed into memory, guarded by -maxn: auditing a
// billion-vertex source makes no sense, sampling its point queries does
// (see Session.EstimateFraction or /estimate).
//
// Usage:
//
//	lcaverify -list                                # print the catalog
//	lcaverify -graph g.txt -alg spanner3           # stretch+connectivity
//	lcaverify -graph g.txt -alg spannerk -param k=3
//	lcaverify -graph torus:rows=40,cols=40 -alg mis
//	lcaverify -graph csr:g.csr -alg matching       # validity+maximality
//	lcaverify -graph g.txt -alg coloring           # properness
//	lcaverify -replay audit.log -audit-key SECRET  # re-execute a server's audit log offline
//
// -replay switches to the trust plane's offline verifier: the file is an
// lcaserve -audit-log (one HMAC-chained JSON record per executed query).
// The chain is verified under -audit-key, each record's query is rebuilt
// from this binary's registry and re-executed against the recorded probe
// transcript with no source behind it, the recomputed answer is compared
// hash-for-hash with the logged one, and embedded Merkle row proofs are
// checked against the record's graph commitment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lca/internal/core"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/serve"
	"lca/internal/source"

	// Register the built-in algorithm catalog.
	_ "lca/internal/coloring"
	_ "lca/internal/matching"
	_ "lca/internal/mis"
	_ "lca/internal/spanner"
)

// paramFlags collects repeated -param name=value flags.
type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }

func (p *paramFlags) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var params paramFlags
	var (
		graphSpec = flag.String("graph", "", "graph source spec: family:args or an edge-list file path (required unless -list or -replay)")
		alg       = flag.String("alg", "spanner3", "algorithm name or alias (see -list)")
		seed      = flag.Uint64("seed", 2019, "random seed")
		list      = flag.Bool("list", false, "list registered algorithms and exit")
		maxN      = flag.Int("maxn", 1<<22, "refuse to materialize sources with more vertices than this")
		replay    = flag.String("replay", "", "verify and re-execute an lcaserve audit log (JSON lines) offline instead of auditing a graph")
		auditKey  = flag.String("audit-key", "", "secret keying the audit log's HMAC chain (with -replay)")
	)
	flag.Var(&params, "param", "algorithm parameter as name=value (repeatable)")
	flag.Parse()

	if *list {
		printCatalog()
		return
	}
	if *replay != "" {
		runReplay(*replay, *auditKey)
		return
	}
	if *graphSpec == "" {
		fmt.Fprintln(os.Stderr, "lcaverify: -graph is required; source families:")
		for _, f := range source.Families() {
			fmt.Fprintln(os.Stderr, "  ", f.Usage)
		}
		os.Exit(2)
	}
	d, err := registry.Get(*alg)
	if err != nil {
		fail(err)
	}
	p, err := parseParams(d, params)
	if err != nil {
		fail(err)
	}
	// Verification materializes the full solution, so memoization only
	// amortizes probes; enable it wherever the algorithm supports it
	// unless the caller chose explicitly.
	p = d.WithMemoDefault(p)

	s := rnd.Seed(*seed)
	src, err := source.Parse(*graphSpec, s)
	if err != nil {
		fail(err)
	}
	g, err := source.Materialize(src, *maxN)
	if err != nil {
		fail(err)
	}
	// A sharded source may have failed probes over to surviving replicas
	// while materializing; surface the fleet's health so a degraded-but-
	// correct audit is visible as such.
	if health, ok := source.HealthOf(src); ok {
		for _, h := range health {
			line := fmt.Sprintf("shard %s: %s", h.Shard, h.State)
			if h.LastError != "" {
				line += " (" + h.LastError + ")"
			}
			fmt.Println(line)
		}
	}
	// The audit runs on the materialized copy; release whatever the
	// source holds (CSR file handles, remote shard connections) now.
	if c, ok := src.(source.Closer); ok {
		if err := c.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d | alg=%s kind=%s seed=%d\n",
		g.N(), g.M(), g.MaxDegree(), d.Name, d.Kind, *seed)

	inst, err := d.Build(oracle.New(g), s, p)
	if err != nil {
		fail(err)
	}

	switch d.Kind {
	case registry.KindEdge:
		h, stats := core.BuildSubgraph(g, inst.(core.EdgeLCA))
		fmt.Printf("assembled subgraph: %d of %d edges (%.1f%%); %s\n",
			h.M(), g.M(), 100*float64(h.M())/float64(max(g.M(), 1)), stats.String())
		if d.ReportSubgraph != nil {
			fmt.Println("metrics:", d.ReportSubgraph(g, h))
		}
		runCheck(d.CheckSubgraph != nil, func() error { return d.CheckSubgraph(g, h, s) })
	case registry.KindVertex:
		in, stats := core.BuildVertexSet(g, inst.(core.VertexLCA))
		count := 0
		for _, b := range in {
			if b {
				count++
			}
		}
		fmt.Printf("assembled vertex set: %d of %d vertices; %s\n", count, g.N(), stats.String())
		runCheck(d.CheckVertexSet != nil, func() error { return d.CheckVertexSet(g, in) })
	case registry.KindLabel:
		labels, stats := core.BuildLabels(g, inst.(core.LabelLCA))
		used := map[int]bool{}
		for _, c := range labels {
			used[c] = true
		}
		fmt.Printf("assembled labeling: %d distinct labels over %d vertices; %s\n",
			len(used), g.N(), stats.String())
		runCheck(d.CheckLabels != nil, func() error { return d.CheckLabels(g, labels) })
	}
	fmt.Println("verification: PASS")
}

// runReplay verifies an audit log offline: the HMAC chain under
// -audit-key, every record re-executed from its recorded transcript and
// compared against its logged answer, every embedded row proof checked
// against its record's commitment. No graph, no network: the log plus
// this binary's registry is the whole trusted base.
func runReplay(path, secret string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	rep, err := serve.ReplayAuditLog(f, secret)
	if err != nil {
		fail(err)
	}
	fmt.Printf("audit log: %d records chain-verified and re-executed, %d row proofs verified\n",
		rep.Records, rep.ProofsVerified)
	fmt.Println("replay: PASS")
}

// runCheck runs the descriptor's invariant checker, if it ships one.
func runCheck(has bool, check func() error) {
	if !has {
		fmt.Println("invariants: no checker registered for this algorithm (assembly-only audit)")
		return
	}
	if err := check(); err != nil {
		fail(err)
	}
	fmt.Println("invariants: hold on the materialized solution")
}

func parseParams(d *registry.Descriptor, raw []string) (registry.Params, error) {
	p := registry.Params{}
	for _, kv := range raw {
		name, value, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("-param %q: want name=value", kv)
		}
		if _, dup := p[name]; dup {
			return nil, fmt.Errorf("-param %q given more than once", name)
		}
		v, err := d.ParseValue(name, value)
		if err != nil {
			return nil, err
		}
		p[name] = v
	}
	return p, nil
}

func printCatalog() {
	for _, d := range registry.All() {
		alias := ""
		if len(d.Aliases) > 0 {
			alias = fmt.Sprintf(" (aliases: %s)", strings.Join(d.Aliases, ", "))
		}
		fmt.Printf("%-16s %-6s %s%s\n", d.Name, d.Kind, d.Summary, alias)
		for _, pr := range d.Params {
			fmt.Printf("    -param %s=<%s> (default %v): %s\n", pr.Name, pr.Type, pr.Default, pr.Help)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lcaverify:", err)
	os.Exit(1)
}
