// Command lcaload drives query load against a running lcaserve and
// reports latency quantiles, achieved throughput and probe cost — the
// serving-tier counterpart of lcabench's algorithm benchmarks. It
// exercises exactly what production sees: HTTP parsing, tenant
// admission, coalescing, oracle builds and probe sequences.
//
// Usage:
//
//	lcaload -url http://127.0.0.1:8080                          # closed loop, 8 workers, 5s
//	lcaload -url ... -qps 500 -duration 30s                     # open loop at a target rate
//	lcaload -url ... -mix '3xvertex/mis,1xlabel/coloring?colors=8'
//	lcaload -url ... -token SECRET -json > load.json            # benchgate-compatible rows
//
// -mix is a comma-separated list of weighted query templates,
// [W x] kind/algo [?extra-params]: "3xvertex/mis,1xlabel/coloring"
// sends three MIS vertex queries for every coloring query. Vertex and
// label targets are drawn uniformly from [0, n) (n discovered from
// GET /sources); edge targets are pre-sampled uniform edges via the
// probe plane's op=randomedge, so every edge query is a real edge.
//
// Closed loop (-qps 0, the default) keeps -concurrency requests in
// flight back to back and measures service latency. Open loop (-qps R)
// schedules arrivals at the target rate and measures latency from the
// *scheduled* arrival time, so queueing delay under overload is visible
// (a closed loop would hide it by slowing the arrival rate).
//
// -trace-sample N forces trace=1 on one request in N, so a load run
// doubles as a trace harvest: the server records a span tree for each
// sampled query, the answer carries its trace id, and lcaload reports
// the slowest traced query per mix entry (fetch the tree from
// GET /traces/{id} on the server while its ring still holds it).
//
// With -json, one JSON-Lines record per mix entry is written to stdout
// in lcabench's format — {"experiment":"LOAD","title":...,"row":{...}}
// — so cmd/benchgate can gate p99 regressions between runs via
// -time-metric 'p99 us/query'. The human summary always goes to stderr.
// Exit status is 1 when no query at all succeeded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lca/internal/metrics"
)

// mixEntry is one weighted query template from -mix.
type mixEntry struct {
	Weight int
	Kind   string // edge | vertex | label | estimate
	Algo   string
	Extra  string // raw extra query params ("k=4&colors=8")
}

// parseMix parses "3xvertex/mis,1xlabel/coloring?colors=8".
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		e := mixEntry{Weight: 1}
		spec := raw
		if i := strings.Index(spec, "x"); i > 0 {
			if w, err := strconv.Atoi(spec[:i]); err == nil {
				if w <= 0 {
					return nil, fmt.Errorf("mix entry %q: weight must be positive", raw)
				}
				e.Weight, spec = w, spec[i+1:]
			}
		}
		spec, e.Extra, _ = strings.Cut(spec, "?")
		var ok bool
		e.Kind, e.Algo, ok = strings.Cut(spec, "/")
		if !ok || e.Algo == "" {
			return nil, fmt.Errorf("mix entry %q: want [WEIGHTx]kind/algo[?params]", raw)
		}
		switch e.Kind {
		case "edge", "vertex", "label", "estimate":
		default:
			return nil, fmt.Errorf("mix entry %q: unknown kind %q (want edge, vertex, label or estimate)", raw, e.Kind)
		}
		if e.Extra != "" {
			if _, err := url.ParseQuery(e.Extra); err != nil {
				return nil, fmt.Errorf("mix entry %q: bad extra params: %v", raw, err)
			}
		}
		mix = append(mix, e)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	return mix, nil
}

// entryStats accumulates one mix entry's results; all fields are
// concurrency-safe.
type entryStats struct {
	queries atomic.Uint64
	errors  atomic.Uint64
	probes  atomic.Uint64
	latency *metrics.Histogram // microseconds

	mu           sync.Mutex
	slowestUS    int64
	slowestTrace string
}

// noteTrace keeps the slowest traced query's id: the one trace worth
// pulling from the server after an over-threshold run.
func (st *entryStats) noteTrace(id string, us int64) {
	st.mu.Lock()
	if st.slowestTrace == "" || us > st.slowestUS {
		st.slowestUS, st.slowestTrace = us, id
	}
	st.mu.Unlock()
}

// client wraps the target server: base URL, auth, discovery and the
// pre-sampled targets every worker draws from.
type client struct {
	http    *http.Client
	base    string
	token   string
	source  string
	n       int
	edges   [][2]int
	reqSeq  atomic.Uint64
	verbose bool

	traceEvery int // -trace-sample: force trace=1 on 1 in N requests
	traceSeq   atomic.Uint64
}

func (c *client) get(path string, into any) error {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	req.Header.Set("X-Request-ID", fmt.Sprintf("load-%d", c.reqSeq.Add(1)))
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return fmt.Errorf("%s: %d %s (request %s)", path, resp.StatusCode, envelope.Error, envelope.RequestID)
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// discoverN reads n for the selected source from GET /sources.
func (c *client) discoverN() error {
	var answer struct {
		Sources []struct {
			Name string `json:"name"`
			N    int    `json:"n"`
		} `json:"sources"`
	}
	if err := c.get("/sources", &answer); err != nil {
		return fmt.Errorf("discovering sources: %w", err)
	}
	var names []string
	for _, s := range answer.Sources {
		if s.Name == c.source {
			c.n = s.N
			return nil
		}
		names = append(names, fmt.Sprintf("%q", s.Name))
	}
	return fmt.Errorf("source %q not served (have %s)", c.source, strings.Join(names, ", "))
}

// sampleEdges pre-draws uniform edges through the probe plane so edge
// queries always target real edges.
func (c *client) sampleEdges(count int, seed uint64) error {
	c.edges = make([][2]int, 0, count)
	for i := 0; i < count; i++ {
		var e struct {
			U int `json:"u"`
			V int `json:"v"`
		}
		path := fmt.Sprintf("/probe?op=randomedge&seed=%d", seed+uint64(i))
		if c.source != "" {
			path += "&source=" + url.QueryEscape(c.source)
		}
		if err := c.get(path, &e); err != nil {
			return fmt.Errorf("sampling edges: %w", err)
		}
		c.edges = append(c.edges, [2]int{e.U, e.V})
	}
	return nil
}

// buildPath renders one request for a mix entry using the worker's rng.
func (c *client) buildPath(e mixEntry, rng *rand.Rand, prefetch, traced bool) string {
	q := url.Values{}
	if e.Extra != "" {
		q, _ = url.ParseQuery(e.Extra)
	}
	switch e.Kind {
	case "vertex", "label":
		q.Set("v", strconv.Itoa(rng.Intn(c.n)))
	case "edge":
		edge := c.edges[rng.Intn(len(c.edges))]
		q.Set("u", strconv.Itoa(edge[0]))
		q.Set("v", strconv.Itoa(edge[1]))
	case "estimate":
		if q.Get("samples") == "" {
			q.Set("samples", "50")
		}
	}
	if c.source != "" {
		q.Set("source", c.source)
	}
	if prefetch {
		q.Set("prefetch", "1")
	}
	if traced {
		q.Set("trace", "1")
	}
	return "/" + e.Kind + "/" + e.Algo + "?" + q.Encode()
}

// fire issues one query and records it into st; sched is the moment the
// request was (logically) due, so open-loop latency includes queue delay.
func (c *client) fire(e mixEntry, st *entryStats, rng *rand.Rand, prefetch bool, sched time.Time) {
	traced := c.traceEvery > 0 && (c.traceSeq.Add(1)-1)%uint64(c.traceEvery) == 0
	path := c.buildPath(e, rng, prefetch, traced)
	var answer struct {
		Probes  uint64 `json:"probes"`
		TraceID string `json:"trace_id"`
	}
	err := c.get(path, &answer)
	elapsed := time.Since(sched)
	if err != nil {
		st.errors.Add(1)
		if c.verbose {
			fmt.Fprintf(os.Stderr, "lcaload: %v\n", err)
		}
		return
	}
	st.queries.Add(1)
	st.probes.Add(answer.Probes)
	st.latency.Observe(float64(elapsed.Microseconds()))
	if answer.TraceID != "" {
		st.noteTrace(answer.TraceID, elapsed.Microseconds())
	}
}

// weightedPick draws a mix entry index by weight.
func weightedPick(mix []mixEntry, total int, rng *rand.Rand) int {
	w := rng.Intn(total)
	for i, e := range mix {
		if w -= e.Weight; w < 0 {
			return i
		}
	}
	return len(mix) - 1
}

func main() {
	var (
		base        = flag.String("url", "", "base URL of the target lcaserve (required)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		qps         = flag.Float64("qps", 0, "open-loop arrival rate; 0 = closed loop at -concurrency")
		concurrency = flag.Int("concurrency", 8, "worker count (in-flight cap)")
		mixFlag     = flag.String("mix", "vertex/mis", "weighted query mix: [Wx]kind/algo[?params],...")
		sourceFlag  = flag.String("source", "", "target source name (default source when empty)")
		prefetch    = flag.Bool("prefetch", false, "route queries through the prefetching oracle")
		token       = flag.String("token", "", "tenant token (Authorization: Bearer)")
		seed        = flag.Uint64("seed", 1, "seed for target sampling")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		edgePool    = flag.Int("edgepool", 256, "pre-sampled edge targets for edge-kind entries")
		traceEvery  = flag.Int("trace-sample", 0, "force trace=1 on 1 in N requests and report the slowest traced query (0 disables)")
		jsonOut     = flag.Bool("json", false, "emit JSON Lines on stdout (lcabench/benchgate format)")
		verbose     = flag.Bool("v", false, "log each failed request")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "lcaload: -url is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcaload: %v\n", err)
		os.Exit(2)
	}
	c := &client{
		http:    &http.Client{Timeout: *timeout},
		base:    strings.TrimRight(*base, "/"),
		token:   *token,
		source:  *sourceFlag,
		verbose: *verbose,

		traceEvery: *traceEvery,
	}
	if err := c.discoverN(); err != nil {
		fmt.Fprintf(os.Stderr, "lcaload: %v\n", err)
		os.Exit(1)
	}
	needEdges := false
	totalWeight := 0
	for _, e := range mix {
		totalWeight += e.Weight
		needEdges = needEdges || e.Kind == "edge"
	}
	if needEdges {
		if err := c.sampleEdges(*edgePool, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lcaload: %v\n", err)
			os.Exit(1)
		}
	}
	stats := make([]*entryStats, len(mix))
	for i := range stats {
		stats[i] = &entryStats{latency: metrics.NewHistogram(metrics.LatencyBucketsUS)}
	}

	mode := fmt.Sprintf("closed loop, %d workers", *concurrency)
	if *qps > 0 {
		mode = fmt.Sprintf("open loop, %.4g qps target, %d workers", *qps, *concurrency)
	}
	fmt.Fprintf(os.Stderr, "lcaload: %s against %s (n=%d, source=%q) for %s\n",
		mode, c.base, c.n, c.source, *duration)

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	if *qps <= 0 {
		// Closed loop: each worker keeps one request in flight.
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(*seed) + int64(w)*7919))
				for time.Now().Before(deadline) {
					i := weightedPick(mix, totalWeight, rng)
					c.fire(mix[i], stats[i], rng, *prefetch, time.Now())
				}
			}(w)
		}
	} else {
		// Open loop: arrivals are scheduled at the target rate regardless
		// of completion; a full queue (all workers busy past the deadline
		// slack) counts arrivals as errors rather than slowing them down.
		sched := make(chan time.Time, *concurrency)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(*seed) + int64(w)*7919))
				for due := range sched {
					i := weightedPick(mix, totalWeight, rng)
					c.fire(mix[i], stats[i], rng, *prefetch, due)
				}
			}(w)
		}
		interval := time.Duration(float64(time.Second) / *qps)
		for due := start; due.Before(deadline); due = due.Add(interval) {
			if wait := time.Until(due); wait > 0 {
				time.Sleep(wait)
			}
			sched <- due
		}
		close(sched)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var totalOK uint64
	enc := json.NewEncoder(os.Stdout)
	title := fmt.Sprintf("%s for %s", mode, elapsed.Round(10*time.Millisecond))
	if !*jsonOut {
		fmt.Printf("%-10s %-12s %8s %6s %12s %12s %10s %10s %10s %10s\n",
			"kind", "algorithm", "queries", "errors", "qps", "mean probes",
			"mean us", "p50 us", "p95 us", "p99 us")
	}
	for i, e := range mix {
		st := stats[i]
		ok := st.queries.Load()
		totalOK += ok
		snap := st.latency.Snapshot()
		meanProbes := 0.0
		if ok > 0 {
			meanProbes = float64(st.probes.Load()) / float64(ok)
		}
		achieved := float64(ok) / elapsed.Seconds()
		config := e.Extra
		if config == "" {
			config = "-"
		}
		if *prefetch {
			config += "+prefetch"
		}
		if *jsonOut {
			row := map[string]string{
				"kind":          e.Kind,
				"algorithm":     e.Algo,
				"config":        config,
				"n":             strconv.Itoa(c.n),
				"queries":       strconv.FormatUint(ok, 10),
				"errors":        strconv.FormatUint(st.errors.Load(), 10),
				"achieved qps":  fmt.Sprintf("%.1f", achieved),
				"mean probes":   fmt.Sprintf("%.1f", meanProbes),
				"mean us/query": fmt.Sprintf("%.1f", snap.Mean),
				"p50 us/query":  fmt.Sprintf("%.1f", snap.P50),
				"p95 us/query":  fmt.Sprintf("%.1f", snap.P95),
				"p99 us/query":  fmt.Sprintf("%.1f", snap.P99),
			}
			if st.slowestTrace != "" {
				row["slowest trace"] = st.slowestTrace
				row["slowest trace us"] = strconv.FormatInt(st.slowestUS, 10)
			}
			_ = enc.Encode(struct {
				Experiment string            `json:"experiment"`
				Title      string            `json:"title"`
				Row        map[string]string `json:"row"`
			}{Experiment: "LOAD", Title: title, Row: row})
		} else {
			fmt.Printf("%-10s %-12s %8d %6d %12.1f %12.1f %10.0f %10.0f %10.0f %10.0f\n",
				e.Kind, e.Algo, ok, st.errors.Load(), achieved, meanProbes,
				snap.Mean, snap.P50, snap.P95, snap.P99)
		}
	}
	var slowestID string
	var slowestUS int64
	for _, st := range stats {
		if st.slowestTrace != "" && (slowestID == "" || st.slowestUS > slowestUS) {
			slowestID, slowestUS = st.slowestTrace, st.slowestUS
		}
	}
	if slowestID != "" {
		fmt.Fprintf(os.Stderr, "lcaload: slowest traced query %d us — GET %s/traces/%s\n",
			slowestUS, c.base, slowestID)
	}
	fmt.Fprintf(os.Stderr, "lcaload: %d queries ok in %s\n", totalOK, elapsed.Round(time.Millisecond))
	if totalOK == 0 {
		fmt.Fprintln(os.Stderr, "lcaload: every request failed")
		os.Exit(1)
	}
}
