package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lca/internal/gen"
	"lca/internal/metrics"
	"lca/internal/serve"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("3xvertex/mis, 1xlabel/coloring?colors=8,edge/spannerk?k=4")
	if err != nil {
		t.Fatal(err)
	}
	want := []mixEntry{
		{Weight: 3, Kind: "vertex", Algo: "mis"},
		{Weight: 1, Kind: "label", Algo: "coloring", Extra: "colors=8"},
		{Weight: 1, Kind: "edge", Algo: "spannerk", Extra: "k=4"},
	}
	if len(mix) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %+v", len(mix), len(want), mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "vertex", "0xvertex/mis", "teapot/mis", "vertex/mis?%zz"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
	// A weight-less entry whose algo happens to contain "x" still parses.
	mix, err = parseMix("vertex/maxmatch")
	if err != nil || mix[0].Algo != "maxmatch" || mix[0].Weight != 1 {
		t.Fatalf("parseMix(vertex/maxmatch) = %+v, %v", mix, err)
	}
}

func TestWeightedPick(t *testing.T) {
	mix := []mixEntry{{Weight: 3}, {Weight: 1}}
	rng := rand.New(rand.NewSource(7))
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		counts[weightedPick(mix, 4, rng)]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("3:1 mix drew %v (ratio %.2f)", counts, ratio)
	}
}

// TestClientAgainstServe runs a short closed loop against an in-process
// serve.Server and checks discovery, edge pre-sampling and the recorded
// stats end to end.
func TestClientAgainstServe(t *testing.T) {
	g := gen.Gnp(400, 0.03, 11)
	srv := serve.New(g, 42)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &client{http: ts.Client(), base: ts.URL, traceEvery: 10}
	if err := c.discoverN(); err != nil {
		t.Fatal(err)
	}
	if c.n != 400 {
		t.Fatalf("discovered n=%d, want 400", c.n)
	}
	if err := c.sampleEdges(16, 5); err != nil {
		t.Fatal(err)
	}
	if len(c.edges) != 16 {
		t.Fatalf("sampled %d edges, want 16", len(c.edges))
	}

	mix, err := parseMix("2xvertex/mis,1xedge/spannerk?k=4")
	if err != nil {
		t.Fatal(err)
	}
	stats := []*entryStats{
		{latency: metrics.NewHistogram(metrics.LatencyBucketsUS)},
		{latency: metrics.NewHistogram(metrics.LatencyBucketsUS)},
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		j := weightedPick(mix, 3, rng)
		c.fire(mix[j], stats[j], rng, false, time.Now())
	}
	var totalOK, totalErr uint64
	for i, st := range stats {
		totalOK += st.queries.Load()
		totalErr += st.errors.Load()
		if st.queries.Load() > 0 {
			snap := st.latency.Snapshot()
			if snap.Count != st.queries.Load() || snap.P99 <= 0 {
				t.Errorf("entry %d: histogram %+v inconsistent with %d queries", i, snap, st.queries.Load())
			}
			if st.probes.Load() == 0 {
				t.Errorf("entry %d: zero probes over %d queries", i, st.queries.Load())
			}
		}
	}
	if totalErr != 0 {
		t.Fatalf("%d requests failed", totalErr)
	}
	if totalOK != 30 {
		t.Fatalf("fired 30, recorded %d", totalOK)
	}
	sawTrace := false
	for _, st := range stats {
		sawTrace = sawTrace || st.slowestTrace != ""
	}
	if !sawTrace {
		t.Error("traceEvery=10 over 30 queries recorded no slowest traced query")
	}
}

// TestClientSendsTenantToken: the Bearer token reaches the server and a
// budget rejection is surfaced as a fire() error, not a success.
func TestClientSendsTenantToken(t *testing.T) {
	g := gen.Gnp(300, 0.05, 7)
	srv := serve.New(g, 42, serve.WithTenants(
		serve.Tenant{Name: "capped", Token: "tiny", ProbeBudget: 1},
		serve.Tenant{Name: "free", Token: "open"},
	))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mix, _ := parseMix("vertex/mis")
	rng := rand.New(rand.NewSource(1))

	capped := &client{http: ts.Client(), base: ts.URL, token: "tiny", n: 300}
	st := &entryStats{latency: metrics.NewHistogram(metrics.LatencyBucketsUS)}
	capped.fire(mix[0], st, rng, false, time.Now())
	if st.errors.Load() != 1 || st.queries.Load() != 0 {
		t.Fatalf("capped tenant: %d ok, %d errors (want 0, 1)", st.queries.Load(), st.errors.Load())
	}

	free := &client{http: ts.Client(), base: ts.URL, token: "open", n: 300}
	st = &entryStats{latency: metrics.NewHistogram(metrics.LatencyBucketsUS)}
	free.fire(mix[0], st, rng, false, time.Now())
	if st.queries.Load() != 1 {
		t.Fatalf("unlimited tenant failed: %d errors", st.errors.Load())
	}
}

func TestBuildPathShapes(t *testing.T) {
	c := &client{n: 100, edges: [][2]int{{3, 9}}, source: "aux"}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		entry    mixEntry
		prefetch bool
		traced   bool
		want     []string
	}{
		{mixEntry{Kind: "vertex", Algo: "mis"}, false, false, []string{"/vertex/mis?", "v=", "source=aux"}},
		{mixEntry{Kind: "edge", Algo: "spannerk", Extra: "k=4"}, true, false, []string{"/edge/spannerk?", "u=3", "v=9", "k=4", "prefetch=1"}},
		{mixEntry{Kind: "estimate", Algo: "mis"}, false, false, []string{"/estimate/mis?", "samples=50"}},
		{mixEntry{Kind: "estimate", Algo: "mis", Extra: "samples=9"}, false, false, []string{"samples=9"}},
		{mixEntry{Kind: "vertex", Algo: "mis"}, false, true, []string{"trace=1"}},
	} {
		path := c.buildPath(tc.entry, rng, tc.prefetch, tc.traced)
		for _, frag := range tc.want {
			if !strings.Contains(path, frag) {
				t.Errorf("buildPath(%+v) = %q, missing %q", tc.entry, path, frag)
			}
		}
	}
}

// TestRowFormatMatchesBenchgate: the JSON record decodes into the
// {"experiment","title","row"} shape benchgate consumes, with the
// quantile columns the CI time gate reads.
func TestRowFormatMatchesBenchgate(t *testing.T) {
	raw := fmt.Sprintf(`{"experiment":"LOAD","title":"t","row":{"kind":"vertex","algorithm":"mis","config":"-","queries":"10","errors":"0","achieved qps":"120.0","mean probes":"8.2","mean us/query":"410.0","p50 us/query":"300.0","p95 us/query":"900.0","p99 us/query":"1500.0"}}`)
	var rec struct {
		Experiment string            `json:"experiment"`
		Title      string            `json:"title"`
		Row        map[string]string `json:"row"`
	}
	if err := json.Unmarshal([]byte(raw), &rec); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"kind", "algorithm", "config", "p99 us/query", "mean probes", "errors"} {
		if _, ok := rec.Row[col]; !ok {
			t.Errorf("row missing column %q", col)
		}
	}
}
