// Command lcabench runs the experiment suite that empirically reproduces
// the theory tables of the LCA papers (see DESIGN.md's experiment index
// E1-E13), plus a registry-generic sweep (REG) benchmarking every
// registered algorithm — an algorithm added to internal/registry appears
// there with no edits here — an implicit-source sweep (SRC) running
// point queries on generator-backed sources at vertex counts far beyond
// RAM (10^8 at the default scale, 10^9 at -scale large), and a network
// sweep (NET) that spins up real loopback HTTP shards and answers point
// queries through the remote:/sharded: source layer end to end.
//
// Usage:
//
//	lcabench [-exp all|REG|SRC|NET|E1,E4,...] [-seed N] [-scale small|medium|large] [-md] [-json]
//
// -exp all runs REG, SRC, NET and E1..E13; pass an explicit list (e.g.
// -exp E1,E5) to reproduce only the paper tables.
//
// With -json, results are emitted as JSON Lines on stdout: one object per
// benchmark scenario (table row), shaped
// {"experiment":"E1","title":...,"row":{column: value, ...}} — the format
// downstream tooling tracks perf trajectories with.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"lca/internal/balls"
	"lca/internal/baseline"
	"lca/internal/coloring"
	"lca/internal/core"
	"lca/internal/estimate"
	"lca/internal/gen"
	"lca/internal/graph"
	"lca/internal/lowerbound"
	"lca/internal/matching"
	"lca/internal/mis"
	"lca/internal/oracle"
	"lca/internal/registry"
	"lca/internal/rnd"
	"lca/internal/serve"
	"lca/internal/source"
	"lca/internal/spanner"
	"lca/internal/stats"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs (E1..E13, REG, SRC, NET) or 'all'")
		seedFlag  = flag.Uint64("seed", 2019, "master random seed")
		scaleFlag = flag.String("scale", "medium", "problem sizes: small, medium or large")
		mdFlag    = flag.Bool("md", false, "emit markdown tables")
		jsonFlag  = flag.Bool("json", false, "emit JSON Lines, one object per benchmark scenario")
	)
	flag.Parse()

	r := &runner{seed: rnd.Seed(*seedFlag), scale: *scaleFlag, markdown: *mdFlag, jsonOut: *jsonFlag}
	type exp struct {
		id, title string
		run       func()
	}
	all := []exp{
		{"REG", "Registry sweep: point-query cost of every registered algorithm", r.reg},
		{"SRC", "Implicit sources: point queries at n beyond RAM", r.src},
		{"NET", "Network sources: point queries through remote/sharded HTTP shards", r.net},
		{"FAIL", "Failover: a sharded fleet keeps answering with a replica killed mid-sweep", r.fail},
		{"E1", "Table 1 (this-work rows): size / stretch / probes", r.e1},
		{"E2", "Table 2: 5-spanner probes by degree class", r.e2},
		{"E3", "Table 3: O(k^2)-spanner probes and edges by side", r.e3},
		{"E4", "Theorem 1.3: distinguisher advantage vs probe budget", r.e4},
		{"E5", "Probe-scaling exponents (log-log fits)", r.e5},
		{"E6", "Bounded-independence ablation (HI/HII and quality)", r.e6},
		{"E7", "LCA vs global baselines", r.e7},
		{"E8", "Sparse-regime LCAs: probes vs degree", r.e8},
		{"E9", "O(k^2)-spanner trade-off vs k", r.e9},
		{"E10", "Approximate maximum matching: ratio vs augmentation rounds", r.e10},
		{"E11", "Sublinear estimators: error vs sample count", r.e11},
		{"E12", "Rank-width q: stretch vs size trade-off (Thm 1.2 remark)", r.e12},
		{"E13", "Load balancing: the power of d choices through the LCA", r.e13},
	}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range all {
			want[e.id] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(e))] = true
		}
	}
	ran := 0
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		r.curID, r.curTitle = e.id, e.title
		if !r.jsonOut {
			fmt.Printf("## %s — %s\n\n", e.id, e.title)
		}
		e.run()
		if !r.jsonOut {
			fmt.Println()
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
}

type runner struct {
	seed     rnd.Seed
	scale    string
	markdown bool
	jsonOut  bool
	// curID/curTitle identify the experiment being printed, for the JSON
	// emitter.
	curID, curTitle string
}

// benchRecord is the machine-readable shape of one benchmark scenario.
type benchRecord struct {
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Row        map[string]string `json:"row"`
}

func (r *runner) print(t *stats.Table) {
	switch {
	case r.jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range t.Records() {
			_ = enc.Encode(benchRecord{Experiment: r.curID, Title: r.curTitle, Row: rec})
		}
	case r.markdown:
		fmt.Print(t.Markdown())
	default:
		fmt.Print(t.String())
	}
}

// note prints free-form commentary below a table; suppressed in JSON mode
// so stdout stays machine-readable.
func (r *runner) note(format string, args ...any) {
	if r.jsonOut {
		return
	}
	fmt.Printf(format+"\n", args...)
}

// reg benchmarks every registered algorithm's point-query cost on one
// moderate bounded-degree workload: the registry makes the sweep generic,
// so a newly registered algorithm shows up here with no further edits.
func (r *runner) reg() {
	const n, deg = 600, 8
	g, err := gen.RandomRegular(n, deg, r.seed.Derive(0x9e9))
	if err != nil {
		fmt.Fprintf(os.Stderr, "REG: %v\n", err)
		return
	}
	edges := g.Edges()
	t := stats.NewTable("algorithm", "kind", "queries", "mean probes", "max probes", "mean us/query")
	const samples = 60
	for _, d := range registry.All() {
		inst, err := d.Build(oracle.New(g), r.seed, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "REG: %s: %v\n", d.Name, err)
			continue
		}
		rep, _ := inst.(core.ProbeReporter)
		prg := rnd.NewPRG(r.seed.Derive(0x9ea))
		var q core.QueryStats
		start := time.Now()
		for i := 0; i < samples; i++ {
			var before oracle.Stats
			if rep != nil {
				before = rep.ProbeStats()
			}
			switch d.Kind {
			case registry.KindEdge:
				e := edges[prg.Intn(len(edges))]
				inst.(core.EdgeLCA).QueryEdge(e.U, e.V)
			case registry.KindVertex:
				inst.(core.VertexLCA).QueryVertex(prg.Intn(n))
			case registry.KindLabel:
				inst.(core.LabelLCA).QueryLabel(prg.Intn(n))
			}
			if rep != nil {
				q.Observe(rep.ProbeStats().Sub(before))
			} else {
				q.Queries++
			}
		}
		elapsed := time.Since(start)
		t.AddRowf("%s|%s|%d|%.0f|%d|%.1f", d.Name, d.Kind, samples, q.Mean(), q.MaxTotal,
			float64(elapsed.Microseconds())/samples)
	}
	r.print(t)
	r.note("\nOne fresh instance per algorithm, %d queries each on a random %d-regular graph (n=%d), default parameters.", samples, deg, n)
}

// src sweeps the sparse-regime LCAs over implicit probe-native sources
// whose vertex counts dwarf RAM: every row is real point queries against a
// graph that never exists as adjacency in memory — the workload the LCA
// model was defined for. The 3-spanner rides along to show a dense-graph
// construction also answers (its E_low shortcut, at these degrees).
//
// The hot-local-path rows price the same circulant family served from a
// materialized CSR file — probed cold from disk, mmapped, and mmapped
// behind the tiered row caches (LRU vs clock L2) — plus the implicit
// source behind the tier. Their ns/probe and allocs/probe columns are
// the steady-state scalar probe cost of each backend (a primed working
// set probed repeatedly); the probe-count columns must match the direct
// rows exactly, since every backend serves the same graph.
func (r *runner) src() {
	var n int
	switch r.scale {
	case "small":
		n = 1_000_000
	case "large":
		n = 1_000_000_000
	default:
		n = 100_000_000
	}
	circSpec := fmt.Sprintf("circulant:n=%d,d=8", n)
	type variant struct {
		family, spec, config string
		algos                []string
		qc                   queryConfig
	}
	baseAlgos := []string{"mis", "coloring", "matching", "spanner3"}
	hotAlgos := []string{"mis", "spanner3"}
	variants := []variant{
		{"ring", fmt.Sprintf("ring:n=%d", n), "direct", baseAlgos, queryConfig{}},
		{"circulant", circSpec, "direct", baseAlgos, queryConfig{}},
		{"blockrandom", fmt.Sprintf("blockrandom:n=%d,d=6,block=64", n), "direct", baseAlgos, queryConfig{}},
		{"circulant", circSpec, "tiered-lru", hotAlgos, queryConfig{tier: oracle.EvictLRU}},
	}
	if csrPath := r.writeBenchCSR(circSpec, n); csrPath != "" {
		defer os.Remove(csrPath)
		variants = append(variants,
			variant{"circulant", "csr:" + csrPath, "csr-cold", hotAlgos, queryConfig{}},
			variant{"circulant", "csr:" + csrPath + "?mmap=1", "csr-mmap", hotAlgos, queryConfig{}},
			variant{"circulant", "csr:" + csrPath + "?mmap=1", "csr-mmap+lru", hotAlgos, queryConfig{tier: oracle.EvictLRU}},
			variant{"circulant", "csr:" + csrPath + "?mmap=1", "csr-mmap+clock", hotAlgos, queryConfig{tier: oracle.EvictClock}},
		)
	}
	t := stats.NewTable("source", "config", "algorithm", "n", "queries", "mean probes", "max probes", "mean us/query", "ns/probe", "allocs/probe")
	const samples = 40
	for _, va := range variants {
		src, err := source.Parse(va.spec, r.seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "SRC: %s: %v\n", va.spec, err)
			continue
		}
		nsProbe, allocsProbe := r.probeHotPath(src, va.qc, n)
		for _, name := range va.algos {
			q, elapsed, _, err := r.measurePointQueries(src, name, n, samples, 0x5bc, va.qc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "SRC: %s: %v\n", name, err)
				continue
			}
			t.AddRowf("%s|%s|%s|%d|%d|%.0f|%d|%.1f|%.1f|%.3f", va.family, va.config, name, n, q.Queries, q.Mean(), q.MaxTotal,
				float64(elapsed.Microseconds())/float64(max(q.Queries, 1)), nsProbe, allocsProbe)
		}
		if c, ok := src.(source.Closer); ok {
			_ = c.Close()
		}
	}
	r.print(t)
	r.note("\nNo direct row ever holds adjacency in memory: sources synthesize neighborhoods per probe from the seed. Probe counts are flat in n — the whole point of the model — and identical down each algorithm's column: the CSR file, the mmap and the row-cache tiers serve the same graph, so only ns/probe and allocs/probe (the steady-state scalar probe cost) move. Cold CSR pays a syscall per probe; mmap reads mapped memory; the tiered rows answer from the arena-backed L1 with zero steady-state allocations.")
}

// benchRowCacheRows is the shared-L2 bound of the tiered bench rows.
const benchRowCacheRows = 4096

// writeBenchCSR materializes spec as a temporary CSR file for the
// hot-local-path rows, returning "" when the scale makes the file
// impractical (n=10^9 is a ~40GB file) or the write fails. The caller
// removes the file.
func (r *runner) writeBenchCSR(spec string, n int) string {
	if n > 200_000_000 {
		fmt.Fprintf(os.Stderr, "SRC: skipping CSR rows at n=%d (file too large)\n", n)
		return ""
	}
	src, err := source.Parse(spec, r.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "SRC: %s: %v\n", spec, err)
		return ""
	}
	f, err := os.CreateTemp("", "lcabench-*.csr")
	if err != nil {
		fmt.Fprintf(os.Stderr, "SRC: %v\n", err)
		return ""
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = graph.WriteCSRStream(bw, n, src.Degree, func(v, i int) int { return src.Neighbor(v, i) })
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "SRC: writing %s: %v\n", f.Name(), err)
		os.Remove(f.Name())
		return ""
	}
	return f.Name()
}

// probeHotPath prices the steady-state scalar probe path of the oracle
// chain qc builds over src: a fixed working set of rows is primed, then
// probed repeatedly with Degree and Neighbor while the clock runs and
// allocations are counted. This isolates what the backend charges per
// probe once caches are warm — the figure the mmap backend and the
// tiered row caches exist to drive down — from the per-query cost of the
// algorithms above.
func (r *runner) probeHotPath(src source.Source, qc queryConfig, n int) (nsPerProbe, allocsPerProbe float64) {
	const workingSet = 256
	const rounds = 200
	o := probeChain(src, qc)
	prg := rnd.NewPRG(r.seed.Derive(0x4a7))
	vs := make([]int, workingSet)
	for i := range vs {
		vs[i] = prg.Intn(n)
	}
	for _, v := range vs { // prime the tiers (and fault in the pages)
		if o.Degree(v) > 0 {
			o.Neighbor(v, 0)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	probes := 0
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for _, v := range vs {
			d := o.Degree(v)
			probes++
			if d > 0 {
				o.Neighbor(v, round%d)
				probes++
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(probes),
		float64(m1.Mallocs-m0.Mallocs) / float64(probes)
}

// queryConfig tunes how measurePointQueries builds its oracle chain:
// prefetch routes exploration through the prefetching tier, width pins
// its speculative width (0 lets the learned-width estimator run), legacy
// strips the rowfull and degree-bound capabilities off the source —
// simulating a pre-rowfull shard, the regime the width estimator exists
// for — and tier inserts the tiered row-cache oracle (L1 arena plus a
// bounded L2 under the named eviction policy) directly over the source.
type queryConfig struct {
	prefetch bool
	width    int
	legacy   bool
	tier     oracle.EvictPolicy
}

// probeChain builds the oracle chain a queryConfig describes — the
// tiered row cache sits directly over the source, the prefetching
// exploration tier above it — shared by the query sweeps and the
// hot-path probe pricing so both measure the same stack.
func probeChain(src source.Source, qc queryConfig) oracle.Oracle {
	probeSrc := src
	if qc.legacy {
		probeSrc = &legacySource{inner: src}
	}
	if qc.tier != "" {
		probeSrc = oracle.NewTiered(probeSrc, oracle.NewRowCache(benchRowCacheRows, qc.tier))
	}
	if qc.prefetch {
		var opts []oracle.PrefetchOption
		if qc.width > 0 {
			opts = append(opts, oracle.WithFetchWidth(qc.width))
		}
		return oracle.NewPrefetch(probeSrc, opts...)
	}
	return oracle.New(probeSrc)
}

// legacySource forwards the probe interface, batching and trip
// accounting of a network source while hiding its RowFetcher and
// DegreeBounder capabilities — the capability surface of a shard that
// predates the rowfull op, against which the prefetching tier must guess
// speculative widths.
type legacySource struct{ inner source.Source }

func (l *legacySource) N() int                 { return l.inner.N() }
func (l *legacySource) Degree(v int) int       { return l.inner.Degree(v) }
func (l *legacySource) Neighbor(v, i int) int  { return l.inner.Neighbor(v, i) }
func (l *legacySource) Adjacency(u, v int) int { return l.inner.Adjacency(u, v) }

func (l *legacySource) ProbeBatch(probes []source.ProbeReq) ([]int, error) {
	if bp, ok := l.inner.(source.BatchProber); ok {
		return bp.ProbeBatch(probes)
	}
	out := make([]int, len(probes))
	for i, p := range probes {
		switch p.Op {
		case source.OpDegree:
			out[i] = l.inner.Degree(p.A)
		case source.OpNeighbor:
			out[i] = l.inner.Neighbor(p.A, p.B)
		default:
			out[i] = l.inner.Adjacency(p.A, p.B)
		}
	}
	return out, nil
}

func (l *legacySource) RoundTrips() uint64 {
	if rt, ok := l.inner.(source.RoundTripCounter); ok {
		return rt.RoundTrips()
	}
	return 0
}

// measurePointQueries runs `samples` point queries of the named
// algorithm's kind against src on one fresh instance, returning probe
// stats, elapsed wall time and the p99 round trips per query — the
// shared measurement loop of the SRC, NET and FAIL sweeps. Edge-kind
// queries target (v, first neighbor of v), skipping the rare isolated
// vertex (blockrandom has a few). With prefetch, the instance runs over
// a prefetching exploration oracle; the per-query stats then show the
// round-trip collapse while the probe columns stay identical.
func (r *runner) measurePointQueries(src source.Source, algo string, n, samples int, deriveLabel uint64, qc queryConfig) (core.QueryStats, time.Duration, float64, error) {
	d, err := registry.Get(algo)
	if err != nil {
		return core.QueryStats{}, 0, 0, err
	}
	inst, err := d.Build(probeChain(src, qc), r.seed, nil)
	if err != nil {
		return core.QueryStats{}, 0, 0, err
	}
	rep, _ := inst.(core.ProbeReporter)
	prg := rnd.NewPRG(r.seed.Derive(deriveLabel))
	var q core.QueryStats
	var rts []uint64
	start := time.Now()
	for i := 0; i < samples; i++ {
		v := prg.Intn(n)
		var before oracle.Stats
		if rep != nil {
			before = rep.ProbeStats()
		}
		switch d.Kind {
		case registry.KindEdge:
			w := src.Neighbor(v, 0)
			if w < 0 {
				continue
			}
			inst.(core.EdgeLCA).QueryEdge(v, w)
		case registry.KindVertex:
			inst.(core.VertexLCA).QueryVertex(v)
		case registry.KindLabel:
			inst.(core.LabelLCA).QueryLabel(v)
		}
		if rep != nil {
			delta := rep.ProbeStats().Sub(before)
			q.Observe(delta)
			rts = append(rts, delta.RoundTrips)
		} else {
			q.Queries++
		}
	}
	return q, time.Since(start), p99(rts), nil
}

// p99 returns the 99th-percentile of the per-query round-trip counts (0
// when nothing was observed).
func p99(rts []uint64) float64 {
	if len(rts) == 0 {
		return 0
	}
	sorted := make([]uint64, len(rts))
	copy(sorted, rts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return float64(sorted[idx])
}

// net benchmarks the network source layer end to end: real loopback HTTP
// shards (full lcaserve handlers, each wrapping its own replica of one
// implicit source) probed through the remote:/sharded: spec grammar. A
// local row over the same backing spec is the control: every config runs
// the same queries, so the mean-probe column must be identical down the
// table — the wire protocol is transparent — while "mean rt/query"
// counts the real HTTP round trips and us/query prices them. Each
// network config runs twice, scalar and prefetch: the prefetch rows route
// through the exploration oracle, whose batched neighborhood fetches
// collapse the round trips per query (probes unchanged — the collapse is
// pure transport).
func (r *runner) net() {
	var n int
	switch r.scale {
	case "small":
		n = 100_000
	case "large":
		n = 10_000_000
	default:
		n = 1_000_000
	}
	backingSpec := fmt.Sprintf("circulant:n=%d,d=8", n)
	blockSpec := fmt.Sprintf("blockrandom:n=%d,d=6,block=64", n)
	var cleanup []func()
	defer func() {
		for _, c := range cleanup {
			c()
		}
	}()
	spawnShard := func(spec string, attested bool) (url, root string, ok bool) {
		backing, err := source.Parse(spec, r.seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "NET: %v\n", err)
			return "", "", false
		}
		if attested {
			att := source.NewAttested(backing)
			backing, root = att, att.Commitment().String()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "NET: %v\n", err)
			return "", "", false
		}
		srv := &http.Server{Handler: serve.NewFromSource(backing, spec, r.seed).Handler()}
		go func() { _ = srv.Serve(ln) }()
		cleanup = append(cleanup, func() { _ = srv.Close() })
		return "http://" + ln.Addr().String(), root, true
	}
	urls := make([]string, 2)
	for i := range urls {
		u, _, ok := spawnShard(backingSpec, false)
		if !ok {
			return
		}
		urls[i] = u
	}
	blockURL, _, ok := spawnShard(blockSpec, false)
	if !ok {
		return
	}
	attURL, attRoot, ok := spawnShard(backingSpec, true)
	if !ok {
		return
	}
	configs := []struct {
		name, spec string
		qc         queryConfig
	}{
		{"local", backingSpec, queryConfig{}},
		{"remote x1", "remote:" + urls[0], queryConfig{}},
		{"remote x1 prefetch", "remote:" + urls[0], queryConfig{prefetch: true}},
		{"sharded x2", "sharded:remote:" + urls[0] + ",remote:" + urls[1], queryConfig{}},
		{"sharded x2 prefetch", "sharded:remote:" + urls[0] + ",remote:" + urls[1], queryConfig{prefetch: true}},
		{"sharded x2 lru", "sharded:cache=65536;remote:" + urls[0] + ";remote:" + urls[1], queryConfig{}},
		{"sharded x2 lru prefetch", "sharded:cache=65536;remote:" + urls[0] + ";remote:" + urls[1], queryConfig{prefetch: true}},
		// Attestation rows: the same shard committed to its graph, the
		// client pinning the root — every answer verified against a Merkle
		// row proof. The probe columns must stay identical to the remote x1
		// rows (verification never changes answers); proof B/query prices
		// the integrity, scalar vs rowfull-batched transport.
		{"remote x1 attest", "remote:" + attURL + "#root=" + attRoot, queryConfig{}},
		{"remote x1 attest prefetch", "remote:" + attURL + "#root=" + attRoot, queryConfig{prefetch: true}},
		// Width-learner rows: a blockrandom-backed shard whose client is
		// capped to the legacy capability surface (no rowfull op, no
		// degree bound), so the prefetching tier must speculate widths.
		// The static row pins the pre-learner default guess; the adaptive
		// row lets the degree estimator size the batches, so its
		// remainder trips/query must fall strictly below the static
		// baseline once the first neighborhoods are observed. The rowfull
		// row is the modern shard: whole rows in one answer, zero
		// remainders by construction.
		{"block remote rowfull prefetch", "remote:" + blockURL, queryConfig{prefetch: true}},
		{"block remote legacy static", "remote:" + blockURL, queryConfig{prefetch: true, width: 4, legacy: true}},
		{"block remote legacy adaptive", "remote:" + blockURL, queryConfig{prefetch: true, legacy: true}},
	}
	algos := []string{"mis", "coloring"}
	t := stats.NewTable("config", "algorithm", "n", "queries", "mean probes", "max probes", "mean rt/query", "p99 rt/query", "remainder trips/query", "proof B/query", "mean us/query")
	const samples = 15
	for _, cfg := range configs {
		src, err := source.Parse(cfg.spec, r.seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "NET: %s: %v\n", cfg.name, err)
			continue
		}
		for _, name := range algos {
			q, elapsed, p99rt, err := r.measurePointQueries(src, name, n, samples, 0x6e7, cfg.qc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "NET: %s: %v\n", name, err)
				continue
			}
			t.AddRowf("%s|%s|%d|%d|%.0f|%d|%.1f|%.1f|%.2f|%.0f|%.1f", cfg.name, name, n, q.Queries, q.Mean(), q.MaxTotal,
				q.MeanRoundTrips(), p99rt, float64(q.ByKind.RemainderTrips)/float64(max(q.Queries, 1)),
				float64(q.ByKind.ProofBytes)/float64(max(q.Queries, 1)),
				float64(elapsed.Microseconds())/float64(max(q.Queries, 1)))
		}
		if c, ok := src.(source.Closer); ok {
			_ = c.Close()
		}
	}
	r.print(t)
	r.note("\nEvery non-local row's probes crossed a real HTTP hop to a loopback shard. The mean-probe column is identical down the table — the wire is transparent; mean rt/query counts the real HTTP requests (p99 the tail) and us/query prices them. Prefetch rows fetch each explored neighborhood as one batched POST, so their round trips collapse; the lru rows show the client-side cache absorbing repeats on top. The block-remote trio isolates the width learner: against a legacy shard (no rowfull op) the adaptive row's remainder trips/query must undercut the static-width baseline, and the rowfull row retires remainders entirely. The attest rows pin the shard's Merkle root and verify every answer against a row proof: probe and round-trip columns must match their unattested twins exactly (verification is client-side), and proof B/query is the integrity bandwidth — amortized by the prefetch row, whose batched rows carry one proof each.")
}

// fail benchmarks the failover path end to end: two loopback lcaserve
// shards behind one sharded: spec (hedged), one of them killed between
// the healthy and degraded phases. The degraded rows must keep the mean
// probe column identical to the healthy rows — failover re-routes
// transport, never changes answers — while the failover column shows the
// dead shard's keys being served by the survivor and "mean rt/query"
// prices the detour (the dead shard is marked dead after the failure
// threshold, so the price is a few failed attempts, not one per probe).
func (r *runner) fail() {
	var n int
	switch r.scale {
	case "small":
		n = 100_000
	case "large":
		n = 10_000_000
	default:
		n = 1_000_000
	}
	backingSpec := fmt.Sprintf("circulant:n=%d,d=8", n)
	const shardCount = 2
	urls := make([]string, shardCount)
	servers := make([]*http.Server, shardCount)
	defer func() {
		for _, srv := range servers {
			if srv != nil {
				_ = srv.Close()
			}
		}
	}()
	for i := 0; i < shardCount; i++ {
		backing, err := source.Parse(backingSpec, r.seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			return
		}
		servers[i] = &http.Server{Handler: serve.NewFromSource(backing, backingSpec, r.seed).Handler()}
		go func(srv *http.Server) { _ = srv.Serve(ln) }(servers[i])
		urls[i] = "http://" + ln.Addr().String()
	}
	// Two sharded clients over the same replica pair: one with the fixed
	// hedge delay, one letting the per-shard latency estimator pick it.
	// Both see the same kill, so the adaptive rows price what the learned
	// delay buys on the degraded tail.
	hedges := []struct{ label, spec string }{
		{"", "sharded:remote:" + urls[0] + ";remote:" + urls[1] + ";hedge=100ms"},
		{"adaptive", "sharded:remote:" + urls[0] + ";remote:" + urls[1] + ";hedge=adaptive"},
	}
	srcs := make([]source.Source, len(hedges))
	for i, h := range hedges {
		src, err := source.Parse(h.spec, r.seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			return
		}
		srcs[i] = src
		defer func() {
			if c, ok := src.(source.Closer); ok {
				_ = c.Close()
			}
		}()
	}
	algos := []string{"mis", "coloring"}
	t := stats.NewTable("config", "algorithm", "n", "queries", "mean probes", "max probes", "mean rt/query", "p99 rt/query", "remainder trips/query", "failovers", "mean us/query")
	const samples = 15
	measure := func(phase string, deriveLabel uint64) {
		for i, h := range hedges {
			config := "sharded x2 " + phase
			if h.label != "" {
				config = "sharded x2 " + h.label + " " + phase
			}
			for _, name := range algos {
				q, elapsed, p99rt, err := r.measurePointQueries(srcs[i], name, n, samples, deriveLabel, queryConfig{})
				if err != nil {
					fmt.Fprintf(os.Stderr, "FAIL: %s: %v\n", name, err)
					continue
				}
				t.AddRowf("%s|%s|%d|%d|%.0f|%d|%.1f|%.1f|%.2f|%d|%.1f", config, name, n, q.Queries, q.Mean(), q.MaxTotal,
					q.MeanRoundTrips(), p99rt, float64(q.ByKind.RemainderTrips)/float64(max(q.Queries, 1)),
					q.ByKind.Failovers, float64(elapsed.Microseconds())/float64(max(q.Queries, 1)))
			}
		}
	}
	measure("healthy", 0x7a1)
	// Kill one replica mid-sweep: the same sources keep answering, the
	// dead shard's keys re-routed to the survivor.
	_ = servers[1].Close()
	servers[1] = nil
	measure("one-killed", 0x7a1)
	r.print(t)
	r.note("\nBoth phases run the same query mix on the same open sharded sources; a replica is killed in between. Mean probes must be identical down the table (failover never changes answers); the failover column counts probes served away from their rendezvous shard, and rt/query prices the detection window (threshold failures, then the dead shard stops being tried). The adaptive rows hedge at the learned per-shard p95 instead of the fixed 100ms, so their p99 rt/query on the degraded phase must not exceed the fixed-hedge rows'.")
}

// sizes returns the n grid for the current scale.
func (r *runner) sizes() []int {
	switch r.scale {
	case "small":
		return []int{256, 512}
	case "large":
		return []int{256, 512, 1024, 2048}
	default:
		return []int{256, 512, 1024}
	}
}

// denseWorkload has average degree ~8*sqrt(n): all degree classes of the
// 3/5-spanner analyses are populated.
func denseWorkload(n int, seed rnd.Seed) *graph.Graph {
	p := 8 / math.Sqrt(float64(n))
	if p > 0.8 {
		p = 0.8
	}
	return gen.Gnp(n, p, seed)
}

// edgeQuerier is any edge LCA exposing probe counts.
type edgeQuerier interface {
	QueryEdge(u, v int) bool
	ProbeStats() oracle.Stats
}

// probeSample queries `samples` random edges on a fresh (memo-free) LCA and
// returns max and mean probes per query.
func probeSample(g *graph.Graph, mk func() edgeQuerier, samples int, seed rnd.Seed) (max uint64, mean float64) {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0, 0
	}
	prg := rnd.NewPRG(seed)
	l := mk()
	var q core.QueryStats
	for i := 0; i < samples; i++ {
		e := edges[prg.Intn(len(edges))]
		before := l.ProbeStats()
		l.QueryEdge(e.U, e.V)
		q.Observe(l.ProbeStats().Sub(before))
	}
	return q.MaxTotal, q.Mean()
}

// e1 reproduces the "This Work" rows of Table 1 empirically. Size and
// probe bounds are reported as ratios against the full ~O expression
// n^{e} * ln^2 n — the polylog is part of the theorem statements, and at
// these n it dominates the constants.
func (r *runner) e1() {
	t := stats.NewTable("construction", "graph", "n", "m", "|H|", "|H| / ~O(n^{1+1/r})", "stretch<=", "max probes", "probes / ~O(n^{1-1/2r})")
	oBound := func(n int, exp float64) float64 {
		l := math.Log(float64(n))
		return math.Pow(float64(n), exp) * l * l
	}
	for _, n := range r.sizes() {
		g := denseWorkload(n, r.seed.Derive(uint64(n)))
		// 3-spanner (Theorem 1.1, r=2).
		s3 := spanner.NewSpanner3Config(oracle.New(g), r.seed, spanner.Config{Memo: true})
		h3, _ := core.BuildSubgraph(g, s3)
		rep3 := core.VerifyStretchSampled(g, h3, 3, 3000, r.seed)
		max3, _ := probeSample(g, func() edgeQuerier { return spanner.NewSpanner3(oracle.New(g), r.seed) }, 150, r.seed.Derive(1))
		t.AddRowf("3-spanner|gnp-dense|%d|%d|%d|%.2f|%s|%d|%.2f",
			n, g.M(), h3.M(), float64(h3.M())/oBound(n, 1.5), stretchCell(rep3, 3), max3, float64(max3)/oBound(n, 0.75))
		// 5-spanner (Theorem 1.1, r=3).
		s5 := spanner.NewSpanner5Config(oracle.New(g), r.seed, spanner.Config{Memo: true})
		h5, _ := core.BuildSubgraph(g, s5)
		rep5 := core.VerifyStretchSampled(g, h5, 5, 3000, r.seed)
		max5, _ := probeSample(g, func() edgeQuerier { return spanner.NewSpanner5(oracle.New(g), r.seed) }, 150, r.seed.Derive(2))
		t.AddRowf("5-spanner|gnp-dense|%d|%d|%d|%.2f|%s|%d|%.2f",
			n, g.M(), h5.M(), float64(h5.M())/oBound(n, 4.0/3), stretchCell(rep5, 5), max5, float64(max5)/oBound(n, 5.0/6))
	}
	// Theorem 3.5: min-degree >= n^{1-1/(2r)} workloads (cliques).
	for _, n := range []int{256, 512} {
		g := gen.Complete(n)
		for _, rr := range []int{2, 3} {
			s := spanner.NewSuperSpanner(oracle.New(g), rr, r.seed, spanner.Config{})
			h, _ := core.BuildSubgraph(g, s)
			rep := core.VerifyStretchSampled(g, h, 3, 3000, r.seed)
			max, _ := probeSample(g, func() edgeQuerier {
				return spanner.NewSuperSpanner(oracle.New(g), rr, r.seed, spanner.Config{})
			}, 100, r.seed.Derive(3))
			t.AddRowf("thm3.5 r=%d|K_n|%d|%d|%d|%.2f|%s|%d|%.2f",
				rr, n, g.M(), h.M(), float64(h.M())/oBound(n, 1+1/float64(rr)), stretchCell(rep, 3), max,
				float64(max)/oBound(n, 1-1/(2*float64(rr))))
		}
	}
	// Theorem 1.2: bounded-degree torus.
	g := gen.Torus(32, 32)
	for _, k := range []int{2, 3} {
		cfg := spanner.KConfig{Config: spanner.Config{Memo: true}, L: 40, CenterProb: 0.03}
		s := spanner.NewSpannerKConfig(oracle.New(g), k, r.seed, cfg)
		h, _ := core.BuildSubgraph(g, s)
		got := core.ExactMaxStretch(g, h)
		cfgPlain := cfg
		cfgPlain.Memo = false
		max, _ := probeSample(g, func() edgeQuerier {
			return spanner.NewSpannerKConfig(oracle.New(g), k, r.seed, cfgPlain)
		}, 100, r.seed.Derive(4))
		t.AddRowf("O(k^2) k=%d|torus 32x32|%d|%d|%d|%.2f|max %d (k^2=%d)|%d|-",
			k, g.N(), g.M(), h.M(), float64(h.M())/oBound(g.N(), 1+1/float64(k)), got, k*k, max)
	}
	r.print(t)
	r.note("\nRatios <= O(1) mean the measurement sits inside the ~O bound. The 5-spanner ratio at small n reflects the saturated sampling regime (log n > n^{1/3}); see E5 for the clean exponent fit.")
}

func stretchCell(rep core.StretchReport, bound int) string {
	if rep.Violations == 0 {
		return fmt.Sprintf("%d ok (max %d)", bound, rep.MaxStretch)
	}
	return fmt.Sprintf("VIOLATED %d/%d", rep.Violations, rep.Checked)
}

// e2 reproduces Table 2: 5-spanner per-class probe complexity.
func (r *runner) e2() {
	n := 1024
	// Core size 420 > n^{5/6} ~ 323 populates E_super; the periphery
	// populates E_low and the band in between.
	g := gen.DenseCore(n, 420, 12, r.seed.Derive(0x22))
	dMed := int(math.Ceil(math.Cbrt(float64(n))))
	dSuper := int(math.Ceil(math.Pow(float64(n), 5.0/6)))
	buckets := map[string][]graph.Edge{}
	for _, e := range g.Edges() {
		du, dv := g.Degree(e.U), g.Degree(e.V)
		lo, hi := du, dv
		if lo > hi {
			lo, hi = hi, lo
		}
		var class string
		switch {
		case lo <= dMed:
			class = "E_low"
		case hi >= dSuper:
			class = "E_super"
		default:
			class = "E_mid (bckt/rep)"
		}
		buckets[class] = append(buckets[class], e)
	}
	t := stats.NewTable("class", "edges", "max probes", "mean probes", "paper bound")
	bounds := map[string]string{
		"E_low":            "O(1)",
		"E_mid (bckt/rep)": "O(n^{5/6} log^2 n)",
		"E_super":          "O(n^{5/6} log n)",
	}
	names := make([]string, 0, len(buckets))
	for class := range buckets {
		names = append(names, class)
	}
	sort.Strings(names)
	for _, class := range names {
		edges := buckets[class]
		l := spanner.NewSpanner5(oracle.New(g), r.seed)
		var q core.QueryStats
		prg := rnd.NewPRG(r.seed.Derive(0x23))
		for i := 0; i < 100; i++ {
			e := edges[prg.Intn(len(edges))]
			before := l.ProbeStats()
			l.QueryEdge(e.U, e.V)
			q.Observe(l.ProbeStats().Sub(before))
		}
		t.AddRowf("%s|%d|%d|%.0f|%s", class, len(edges), q.MaxTotal, q.Mean(), bounds[class])
	}
	r.print(t)
}

// e3 reproduces Table 3: the O(k^2)-spanner split by construction side.
func (r *runner) e3() {
	g := gen.Gnp(600, 0.015, r.seed.Derive(0x31))
	kcfg := spanner.KConfig{Config: spanner.Config{Memo: true}, L: 30, CenterProb: 0.05}
	classifier := spanner.NewSpannerKConfig(oracle.New(g), 2, r.seed, kcfg)
	h, _ := core.BuildSubgraph(g, classifier)
	classes := map[string][]graph.Edge{}
	sizes := map[string]int{}
	for _, e := range g.Edges() {
		c := classifier.EdgeClass(e.U, e.V)
		classes[c] = append(classes[c], e)
		if h.HasEdge(e.U, e.V) {
			sizes[c]++
		}
	}
	plain := kcfg
	plain.Memo = false
	t := stats.NewTable("side", "edges in G", "edges kept", "max probes", "mean probes", "paper bound")
	bounds := map[string]string{
		"sparse": "O(Delta^2 L^2)",
		"tree":   "O(Delta L)",
		"cells":  "O(p Delta^4 L^3 log n)",
	}
	for _, side := range []string{"sparse", "tree", "cells"} {
		edges := classes[side]
		if len(edges) == 0 {
			t.AddRowf("%s|0|0|-|-|%s", side, bounds[side])
			continue
		}
		l := spanner.NewSpannerKConfig(oracle.New(g), 2, r.seed, plain)
		var q core.QueryStats
		prg := rnd.NewPRG(r.seed.Derive(0x32))
		for i := 0; i < 60; i++ {
			e := edges[prg.Intn(len(edges))]
			before := l.ProbeStats()
			l.QueryEdge(e.U, e.V)
			q.Observe(l.ProbeStats().Sub(before))
		}
		t.AddRowf("%s|%d|%d|%d|%.0f|%s", side, len(edges), sizes[side], q.MaxTotal, q.Mean(), bounds[side])
	}
	r.print(t)
}

// e4 reproduces the Theorem 1.3 shape: advantage vs probe budget.
func (r *runner) e4() {
	t := stats.NewTable("n", "d", "budget", "budget/sqrt(n)", "meet rate", "advantage")
	ns := []int{256, 1024}
	if r.scale == "large" {
		ns = append(ns, 4096)
	}
	for _, n := range ns {
		d := 4
		sqrtN := math.Sqrt(float64(n))
		var budgets []int
		for f := 0.125; f <= 16; f *= 4 {
			budgets = append(budgets, int(f*sqrtN))
		}
		exp := lowerbound.Experiment{N: n, D: d, MaxBudget: budgets[len(budgets)-1], Trials: 40, Seed: r.seed.Derive(uint64(n))}
		pts, err := exp.Run(budgets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E4 failed for n=%d: %v\n", n, err)
			continue
		}
		for _, p := range pts {
			t.AddRowf("%d|%d|%d|%.2f|%.2f|%.2f", n, d, p.Budget, float64(p.Budget)/sqrtN, p.MeetRate, p.Advantage)
		}
	}
	r.print(t)
	r.note("\nShape check: advantage ~0 for budgets well below sqrt(n), rising once the budget crosses the Theta(sqrt(n)) birthday scale (Theorem 1.3).")
}

// e5 fits the probe-scaling exponents. Each construction is measured on a
// workload whose degrees stay inside its interesting band across the whole
// n grid (a crossing of the n^{3/4} / n^{5/6} thresholds mid-grid would
// switch code paths and corrupt the fit). HitConst=1 keeps the sampling
// probabilities strictly below 1 at these n (the Theta(log n) analysis
// assumes n^{1/3} >> log n).
func (r *runner) e5() {
	cfg := spanner.Config{HitConst: 1}
	fit := func(ns []int, deg func(n int) float64, mk func(g *graph.Graph) edgeQuerier) (xs, means []float64) {
		for _, n := range ns {
			p := deg(n) / float64(n)
			g := gen.Gnp(n, p, r.seed.Derive(uint64(n)))
			_, mean := probeSample(g, func() edgeQuerier { return mk(g) }, 100, r.seed.Derive(uint64(n)+7))
			xs = append(xs, float64(n))
			means = append(means, mean)
		}
		return xs, means
	}
	ns3 := []int{256, 512, 1024, 2048}
	ns5 := []int{512, 1024, 2048}
	if r.scale == "large" {
		ns3 = append(ns3, 4096)
		ns5 = append(ns5, 4096)
	}
	t := stats.NewTable("construction", "workload degree", "fitted exponent", "theory exponent", "probes at max n")
	// 3-spanner: Delta = 8*sqrt(n) exercises E_high and E_super.
	x3, y3 := fit(ns3,
		func(n int) float64 { return 8 * math.Sqrt(float64(n)) },
		func(g *graph.Graph) edgeQuerier { return spanner.NewSpanner3Config(oracle.New(g), r.seed, cfg) })
	if a, _, ok := stats.FitPowerLaw(x3, y3); ok {
		t.AddRowf("3-spanner|8 sqrt(n)|%.3f|0.750|%.0f", a, y3[len(y3)-1])
	}
	// 5-spanner: Delta = 2*n^{0.6} stays inside [n^{1/3}, n^{5/6}], the
	// band where the bucket/representative machinery does the work.
	x5, y5 := fit(ns5,
		func(n int) float64 { return 2 * math.Pow(float64(n), 0.6) },
		func(g *graph.Graph) edgeQuerier { return spanner.NewSpanner5Config(oracle.New(g), r.seed, cfg) })
	if a, _, ok := stats.FitPowerLaw(x5, y5); ok {
		t.AddRowf("5-spanner|2 n^0.6|%.3f|0.833|%.0f", a, y5[len(y5)-1])
	}
	r.print(t)
	r.note("\nShape check: both constructions are strongly sublinear in n even at Delta = n^{Omega(1)}; finite-size polylog factors perturb the fitted exponents by O(1/log n).")
}

// e6 is the bounded-independence ablation.
func (r *runner) e6() {
	n := 1024
	g := denseWorkload(n, r.seed.Derive(0x61))
	delta := int(math.Ceil(math.Sqrt(float64(n))))
	t := stats.NewTable("independence", "|S|", "E[|S|]", "high vertices", "covered (HII)", "min hits", "mean hits", "|H3|", "stretch")
	for _, ind := range []int{2, 4, 0} {
		label := fmt.Sprintf("%d-wise", ind)
		if ind == 0 {
			label = "Theta(log n)-wise"
		}
		hit := spanner.EvalHitting(g, delta, r.seed.Derive(0x62), 2.5, indOrDefault(ind, n))
		cfg := spanner.Config{Memo: true, Independence: ind}
		s := spanner.NewSpanner3Config(oracle.New(g), r.seed.Derive(0x63), cfg)
		h, _ := core.BuildSubgraph(g, s)
		rep := core.VerifyStretchSampled(g, h, 3, 2000, r.seed)
		t.AddRowf("%s|%d|%.0f|%d|%d|%d|%.1f|%d|%s", label,
			hit.Centers, hit.ExpectedCenters, hit.HighVertices, hit.Covered, hit.MinHits, hit.MeanHits,
			h.M(), stretchCell(rep, 3))
	}
	r.print(t)
}

func indOrDefault(ind, n int) int {
	if ind > 0 {
		return ind
	}
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return 2*l + 4
}

// e7 compares the LCA spanners with global baselines.
func (r *runner) e7() {
	t := stats.NewTable("algorithm", "model", "n", "m", "|H|", "max stretch (sampled)")
	for _, n := range []int{512, 1024} {
		g := denseWorkload(n, r.seed.Derive(uint64(0x71+n)))
		rows := []struct {
			name, model string
			build       func() *graph.Graph
			bound       int
		}{
			{"LCA 3-spanner", "local", func() *graph.Graph {
				h, _ := core.BuildSubgraph(g, spanner.NewSpanner3Config(oracle.New(g), r.seed, spanner.Config{Memo: true}))
				return h
			}, 3},
			{"Baswana-Sen k=2", "global", func() *graph.Graph { return baseline.BaswanaSen(g, 2, r.seed) }, 3},
			{"Greedy k=2", "global", func() *graph.Graph { return baseline.GreedySpanner(g, 2) }, 3},
			{"LCA 5-spanner", "local", func() *graph.Graph {
				h, _ := core.BuildSubgraph(g, spanner.NewSpanner5Config(oracle.New(g), r.seed, spanner.Config{Memo: true}))
				return h
			}, 5},
			{"Baswana-Sen k=3", "global", func() *graph.Graph { return baseline.BaswanaSen(g, 3, r.seed) }, 5},
			{"Greedy k=3", "global", func() *graph.Graph { return baseline.GreedySpanner(g, 3) }, 5},
		}
		for _, row := range rows {
			h := row.build()
			rep := core.VerifyStretchSampled(g, h, row.bound, 2000, r.seed)
			t.AddRowf("%s|%s|%d|%d|%d|%s", row.name, row.model, n, g.M(), h.M(), stretchCell(rep, row.bound))
		}
	}
	r.print(t)
}

// e8 measures the classical LCAs' probe growth with degree.
func (r *runner) e8() {
	t := stats.NewTable("algorithm", "d", "mean probes/query", "max probes/query")
	for _, d := range []int{3, 6, 12, 24} {
		g, err := gen.RandomRegular(2048, d, r.seed.Derive(uint64(d)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "E8: %v\n", err)
			return
		}
		measure := func(name string, query func(seed rnd.Seed, v int) uint64) {
			var q stats.Summary
			for i := 0; i < 60; i++ {
				q.Add(float64(query(r.seed.Derive(uint64(i)), (i*37)%g.N())))
			}
			t.AddRowf("%s|%d|%.1f|%.0f", name, d, q.Mean(), q.Max())
		}
		measure("MIS", func(seed rnd.Seed, v int) uint64 {
			l := mis.New(oracle.New(g), seed)
			l.QueryVertex(v)
			return l.ProbeStats().Total()
		})
		measure("matching", func(seed rnd.Seed, v int) uint64 {
			l := matching.New(oracle.New(g), seed)
			l.QueryEdge(v, g.Neighbor(v, 0))
			return l.ProbeStats().Total()
		})
		measure("coloring", func(seed rnd.Seed, v int) uint64 {
			l := coloring.New(oracle.New(g), seed)
			l.QueryLabel(v)
			return l.ProbeStats().Total()
		})
	}
	r.print(t)
	r.note("\nShape check: probes grow superlinearly in d (the sparse-regime blowup motivating the dense-graph spanner LCAs).")
}

// e10 sweeps augmentation rounds for the approximate matching LCA on
// graphs with known maximum matchings.
func (r *runner) e10() {
	t := stats.NewTable("graph", "optimum", "rounds", "|M|", "ratio", "guarantee (r+1)/(r+2)", "mean probes/query")
	cases := []struct {
		name string
		g    *graph.Graph
		opt  int
	}{
		{"path 400", gen.Path(400), 200},
		{"cycle 401", gen.Cycle(401), 200},
		{"grid 8x50", gen.Grid(8, 50), 200},
	}
	for _, c := range cases {
		for _, rounds := range []int{0, 1, 2} {
			lca := matching.NewApprox(oracle.New(c.g), rounds, r.seed)
			m, _ := core.BuildSubgraph(c.g, lca)
			// Probes on a fresh instance, sampled.
			probe := matching.NewApprox(oracle.New(c.g), rounds, r.seed)
			edges := c.g.Edges()
			prg := rnd.NewPRG(r.seed.Derive(0xa10))
			var q core.QueryStats
			for i := 0; i < 50; i++ {
				e := edges[prg.Intn(len(edges))]
				before := probe.ProbeStats()
				probe.QueryEdge(e.U, e.V)
				q.Observe(probe.ProbeStats().Sub(before))
			}
			t.AddRowf("%s|%d|%d|%d|%.3f|%.3f|%.0f", c.name, c.opt, rounds, m.M(),
				float64(m.M())/float64(c.opt), float64(rounds+1)/float64(rounds+2), q.Mean())
		}
	}
	r.print(t)
	r.note("\nShape check: the measured ratio dominates the (r+1)/(r+2) guarantee at every r, and probe cost grows with the round count (the Delta^{O(1/eps)} sparse-regime price).")
}

// e11 measures estimator error against the Hoeffding bound.
func (r *runner) e11() {
	g := gen.Torus(50, 50) // n=2500
	seed := r.seed.Derive(0xe11)
	// Ground truth by exhaustive assembly.
	truthSet, _ := core.BuildVertexSet(g, mis.New(oracle.New(g), seed))
	truth := 0
	for _, b := range truthSet {
		if b {
			truth++
		}
	}
	trueFrac := float64(truth) / float64(g.N())
	t := stats.NewTable("samples", "estimate", "true fraction", "|error|", "hoeffding bound (95%)")
	for _, s := range []int{50, 200, 800, 3200} {
		l := mis.New(oracle.New(g), seed)
		res := estimate.VertexFraction(g.N(), l, s, 0.05, r.seed.Derive(uint64(s)))
		t.AddRowf("%d|%.4f|%.4f|%.4f|%.4f", s, res.Fraction, trueFrac,
			math.Abs(res.Fraction-trueFrac), res.ErrorBound)
	}
	r.print(t)
	r.note("\nShape check: the error falls inside the Hoeffding radius and shrinks like 1/sqrt(samples) — solution sizes are estimable without ever materializing the solution.")
}

// e12 sweeps the rank-rule width q of the O(k^2)-spanner, the paper's
// post-Theorem-1.2 remark: ~O(n^{1+1/k} + nq) edges buy stretch
// O(k log_q n), interpolating down to the Lenzen-Levi single-edge rule at
// q=1.
func (r *runner) e12() {
	// Small cells over a dense graph make the rule-3 intersections large
	// enough for q to bind at this scale.
	g := gen.Gnp(500, 0.08, r.seed.Derive(0x121))
	t := stats.NewTable("q", "|H|", "max stretch", "connectivity")
	for _, q := range []int{1, 4, 32, 256} {
		cfg := spanner.KConfig{Config: spanner.Config{Memo: true}, L: 8, CenterProb: 0.2, Q: q}
		lca := spanner.NewSpannerKConfig(oracle.New(g), 2, r.seed, cfg)
		h, _ := core.BuildSubgraph(g, lca)
		conn := "ok"
		if err := core.VerifyConnectivityPreserved(g, h); err != nil {
			conn = "BROKEN"
		}
		t.AddRowf("%d|%d|%d|%s", q, h.M(), core.ExactMaxStretch(g, h), conn)
	}
	r.print(t)
	r.note("\nShape check: size grows and stretch falls as q increases; connectivity is unconditional at every q (Lemma 4.12 does not use the rank argument).")
}

// e13 measures the d-choice load-balancing LCA: max load and probe cost
// per placement query as d grows (the power-of-two-choices effect, one of
// the original LCA applications).
func (r *runner) e13() {
	const n = 5000
	t := stats.NewTable("d", "max load", "theory shape", "mean probes/query")
	for _, d := range []int{1, 2, 4} {
		table := balls.NewChoiceTable(n, n, d, r.seed.Derive(uint64(d)))
		a := balls.New(table, r.seed.Derive(0x131))
		worst := 0
		for bin := 0; bin < table.Bins(); bin++ {
			if l := a.LoadOf(bin); l > worst {
				worst = l
			}
		}
		// Probe cost per fresh query, sampled on a new instance.
		fresh := balls.New(table, r.seed.Derive(0x131))
		before := table.Probes()
		const queries = 200
		prg := rnd.NewPRG(r.seed.Derive(0x132))
		for i := 0; i < queries; i++ {
			fresh.QueryBall(prg.Intn(n))
		}
		mean := float64(table.Probes()-before) / queries
		shape := "Theta(log n/log log n)"
		if d > 1 {
			shape = "log log n/log d + O(1)"
		}
		t.AddRowf("%d|%d|%s|%.0f", d, worst, shape, mean)
	}
	r.print(t)
	r.note("\nShape check: one extra choice collapses the max load — the power of two choices, answered per ball by a local query.")
}

// e9 sweeps k for the O(k^2)-spanner.
func (r *runner) e9() {
	g := gen.Torus(32, 32)
	t := stats.NewTable("k", "|H|", "size bound n^{1+1/k}", "max stretch", "stretch bound O(k^2)")
	for _, k := range []int{1, 2, 3, 4} {
		cfg := spanner.KConfig{Config: spanner.Config{Memo: true}, L: 40, CenterProb: 0.03}
		s := spanner.NewSpannerKConfig(oracle.New(g), k, r.seed, cfg)
		h, _ := core.BuildSubgraph(g, s)
		got := core.ExactMaxStretch(g, h)
		t.AddRowf("%d|%d|%.0f|%d|%d", k, h.M(), math.Pow(float64(g.N()), 1+1/float64(k)), got, k*k)
	}
	r.print(t)
}
