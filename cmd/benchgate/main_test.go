package main

import (
	"strings"
	"testing"
)

const oldJSON = `{"experiment":"REG","title":"t","row":{"algorithm":"mis","kind":"vertex","queries":"60","mean probes":"100","mean us/query":"5.0"}}
{"experiment":"REG","title":"t","row":{"algorithm":"coloring","kind":"label","queries":"60","mean probes":"50"}}
{"experiment":"SRC","title":"t","row":{"source":"ring","algorithm":"mis","n":"1000000","mean probes":"4"}}
{"experiment":"SRC","title":"t","row":{"source":"ring","algorithm":"gone","n":"1000000","mean probes":"9"}}
`

const newJSON = `{"experiment":"REG","title":"t","row":{"algorithm":"mis","kind":"vertex","queries":"60","mean probes":"150","mean us/query":"9.0"}}
{"experiment":"REG","title":"t","row":{"algorithm":"coloring","kind":"label","queries":"60","mean probes":"55"}}
{"experiment":"SRC","title":"t","row":{"source":"ring","algorithm":"mis","n":"1000000","mean probes":"5"}}
{"experiment":"NET","title":"t","row":{"config":"remote x1","algorithm":"mis","n":"1000000","mean probes":"4"}}
`

func mustParse(t *testing.T, s string) []record {
	t.Helper()
	recs, err := parseRecords(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	oldRecs := mustParse(t, oldJSON)
	newRecs := mustParse(t, newJSON)
	results, onlyOld, onlyNew := compare(oldRecs, newRecs, "mean probes", 0.20, 2)
	byKey := map[string]gateResult{}
	for _, r := range results {
		byKey[r.key] = r
	}
	if len(results) != 3 {
		t.Fatalf("compared %d scenarios, want 3", len(results))
	}
	// mis REG: 100 -> 150 is +50%, above 20%+2 — regression.
	mis := byKey["REG|algorithm=mis|kind=vertex|n=1000000"]
	for k, r := range byKey {
		if strings.Contains(k, "REG") && strings.Contains(k, "mis") {
			mis = r
		}
	}
	if !mis.regress {
		t.Fatalf("mis +50%% not flagged: %+v", mis)
	}
	// coloring: 50 -> 55 is +10%, inside tolerance.
	for k, r := range byKey {
		if strings.Contains(k, "coloring") && r.regress {
			t.Fatalf("coloring +10%% flagged as regression: %s %+v", k, r)
		}
	}
	// SRC mis: 4 -> 5 is +25% relative but inside the absolute slack.
	for k, r := range byKey {
		if strings.Contains(k, "SRC") && r.regress {
			t.Fatalf("tiny-probe row tripped the gate despite slack: %s %+v", k, r)
		}
	}
	if len(onlyNew) != 1 || !strings.Contains(onlyNew[0], "NET") {
		t.Fatalf("onlyNew = %v, want the NET row", onlyNew)
	}
	if len(onlyOld) != 1 || !strings.Contains(onlyOld[0], "gone") {
		t.Fatalf("onlyOld = %v, want the removed row", onlyOld)
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	oldRecs := mustParse(t, `{"experiment":"REG","title":"t","row":{"algorithm":"mis","mean probes":"100"}}`)
	newRecs := mustParse(t, `{"experiment":"REG","title":"t","row":{"algorithm":"mis","mean probes":"60"}}`)
	results, _, _ := compare(oldRecs, newRecs, "mean probes", 0.20, 2)
	if len(results) != 1 || results[0].regress {
		t.Fatalf("improvement flagged: %+v", results)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldRecs := mustParse(t, `{"experiment":"REG","title":"t","row":{"algorithm":"x","mean probes":"0"}}`)
	newRecs := mustParse(t, `{"experiment":"REG","title":"t","row":{"algorithm":"x","mean probes":"3"}}`)
	results, _, _ := compare(oldRecs, newRecs, "mean probes", 0.20, 2)
	if len(results) != 1 || !results[0].regress {
		t.Fatalf("0 -> 3 (above slack) not flagged: %+v", results)
	}
}

func TestCompareTimeGate(t *testing.T) {
	oldRecs := mustParse(t, `{"experiment":"NET","title":"t","row":{"config":"remote x1","algorithm":"mis","mean us/query":"3000"}}
{"experiment":"NET","title":"t","row":{"config":"local","algorithm":"mis","mean us/query":"3"}}
{"experiment":"NET","title":"t","row":{"config":"sharded x2","algorithm":"mis","mean us/query":"2000"}}
`)
	newRecs := mustParse(t, `{"experiment":"NET","title":"t","row":{"config":"remote x1","algorithm":"mis","mean us/query":"9000"}}
{"experiment":"NET","title":"t","row":{"config":"local","algorithm":"mis","mean us/query":"9"}}
{"experiment":"NET","title":"t","row":{"config":"sharded x2","algorithm":"mis","mean us/query":"3500"}}
`)
	results := compareTime(oldRecs, newRecs, "mean us/query", 1.0, 500)
	if len(results) != 3 {
		t.Fatalf("compared %d scenarios, want 3", len(results))
	}
	for _, r := range results {
		switch {
		case strings.Contains(r.key, "remote x1"):
			// 3000 -> 9000 is +200%, above the +100% gate and the floor.
			if !r.regress {
				t.Fatalf("large wall-clock regression not flagged: %+v", r)
			}
		case strings.Contains(r.key, "local"):
			// 3 -> 9 triples but sits under the absolute floor: noise.
			if r.regress {
				t.Fatalf("tiny row tripped the time gate despite the floor: %+v", r)
			}
		case strings.Contains(r.key, "sharded"):
			// 2000 -> 3500 is +75%, inside the generous tolerance.
			if r.regress {
				t.Fatalf("+75%% flagged by a +100%% gate: %+v", r)
			}
		}
	}
}

func TestCompareTimeGateSkipsUnbaselined(t *testing.T) {
	newRecs := mustParse(t, `{"experiment":"NET","title":"t","row":{"config":"remote x1 prefetch","algorithm":"mis","mean us/query":"9000"}}`)
	if results := compareTime(nil, newRecs, "mean us/query", 1.0, 500); len(results) != 0 {
		t.Fatalf("unbaselined rows must not be time-gated: %+v", results)
	}
}

func TestCompareHotPathAllocGate(t *testing.T) {
	// The SRC sweep's allocs/probe column, gated at CI's +100% +2 slack:
	// the zero-alloc steady state has headroom for measurement jitter but
	// a real per-probe allocation (one alloc per probe = 1.0+) must trip.
	oldRecs := mustParse(t, `{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-mmap+lru","algorithm":"mis","n":"1000000","allocs/probe":"0.000"}}
{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-cold","algorithm":"mis","n":"1000000","allocs/probe":"0.002"}}
`)
	newRecs := mustParse(t, `{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-mmap+lru","algorithm":"mis","n":"1000000","allocs/probe":"3.100"}}
{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-cold","algorithm":"mis","n":"1000000","allocs/probe":"0.180"}}
`)
	results, _, _ := compare(oldRecs, newRecs, "allocs/probe", 1.0, 2)
	if len(results) != 2 {
		t.Fatalf("compared %d scenarios, want 2", len(results))
	}
	for _, r := range results {
		switch {
		case strings.Contains(r.key, "csr-mmap+lru"):
			// 0 -> 3.1 allocs/probe: the arena path started allocating.
			if !r.regress {
				t.Fatalf("lost zero-alloc steady state not flagged: %+v", r)
			}
		case strings.Contains(r.key, "csr-cold"):
			// 0.002 -> 0.18 stays inside the absolute slack: jitter.
			if r.regress {
				t.Fatalf("alloc jitter tripped the gate despite slack: %+v", r)
			}
		}
	}
}

func TestCompareHotPathTimeGate(t *testing.T) {
	// The SRC sweep's ns/probe column, gated at CI's +100% +100ns slack:
	// the mmap backend collapsing back to cold-read latency must trip,
	// while wall-clock noise on an already-cheap row must not.
	oldRecs := mustParse(t, `{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-mmap","algorithm":"mis","n":"1000000","ns/probe":"23.3"}}
{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-cold","algorithm":"mis","n":"1000000","ns/probe":"600.0"}}
`)
	newRecs := mustParse(t, `{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-mmap","algorithm":"mis","n":"1000000","ns/probe":"580.0"}}
{"experiment":"SRC","title":"t","row":{"source":"circulant","config":"csr-cold","algorithm":"mis","n":"1000000","ns/probe":"900.0"}}
`)
	results, _, _ := compare(oldRecs, newRecs, "ns/probe", 1.0, 100)
	if len(results) != 2 {
		t.Fatalf("compared %d scenarios, want 2", len(results))
	}
	for _, r := range results {
		switch {
		case strings.Contains(r.key, "csr-mmap"):
			// 23 -> 580: mmap probes now cost what cold reads cost.
			if !r.regress {
				t.Fatalf("mmap probe-latency collapse not flagged: %+v", r)
			}
		case strings.Contains(r.key, "csr-cold"):
			// 600 -> 900 is +50%, inside the generous +100% gate.
			if r.regress {
				t.Fatalf("+50%% tripped a +100%% gate: %+v", r)
			}
		}
	}
}

func TestCompareUnparseableMetricSkipped(t *testing.T) {
	oldRecs := mustParse(t, `{"experiment":"E1","title":"t","row":{"construction":"3-spanner","stretch<=":"3 ok","mean probes":"-"}}`)
	newRecs := mustParse(t, `{"experiment":"E1","title":"t","row":{"construction":"3-spanner","stretch<=":"3 ok","mean probes":"12"}}`)
	results, _, onlyNew := compare(oldRecs, newRecs, "mean probes", 0.20, 2)
	if len(results) != 0 {
		t.Fatalf("unparseable baseline compared anyway: %+v", results)
	}
	if len(onlyNew) != 1 {
		t.Fatalf("row with fresh parseable value should be reported as ungated, got %v", onlyNew)
	}
}
