// Command benchgate compares two lcabench -json outputs and fails when a
// benchmark metric regresses — the CI gate that turns the uploaded
// BENCH_ci.json artifacts into an enforced perf trajectory instead of a
// graph nobody reads.
//
// Usage:
//
//	benchgate -old prev/BENCH_ci.json -new BENCH_ci.json \
//	  [-metric "mean probes,mean rt/query"] [-tolerance 0.20] [-slack 2] \
//	  [-time-metric "mean us/query"] [-time-tolerance 1.0] [-time-floor 500]
//
// Rows are matched by experiment plus their identity columns (algorithm,
// source, config, ...); a row regresses when new > old*(1+tolerance) +
// slack. The absolute slack keeps tiny-probe rows (mean 3 -> 4) from
// tripping a 20% relative gate on noise. -metric accepts a
// comma-separated list, so deterministic counters (probes, round trips)
// share one strict gate. Rows only present on one side are reported but
// never fail the gate: new benchmarks have no baseline and removed ones
// have no current value.
//
// The time gate (-time-metric, off when empty) guards wall-clock columns
// with deliberately generous settings: CI runners are noisy, so the
// default tolerance is +100%, and rows whose current value sits at or
// below the absolute floor (microseconds) never fail — a 3us row doubling
// to 6us is scheduler jitter, a 3000us row doubling is a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record mirrors lcabench's JSON Lines shape.
type record struct {
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Row        map[string]string `json:"row"`
}

// identityCols are the row columns that identify a scenario (as opposed
// to carrying measurements); the key is the experiment plus every
// identity column the row has, so each experiment's schema works
// unmodified.
var identityCols = []string{
	"algorithm", "source", "config", "construction", "class", "side", "graph",
	"kind", "model", "independence", "workload degree",
	"n", "d", "k", "q", "rounds", "samples", "budget", "block",
}

func key(rec record) string {
	parts := []string{rec.Experiment}
	for _, c := range identityCols {
		if v, ok := rec.Row[c]; ok {
			parts = append(parts, c+"="+v)
		}
	}
	return strings.Join(parts, "|")
}

func parseRecords(r io.Reader) ([]record, error) {
	var out []record
	dec := json.NewDecoder(r)
	for {
		var rec record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// metricValues indexes a record list by scenario key, keeping only rows
// that carry a parseable value for the metric.
func metricValues(recs []record, metric string) map[string]float64 {
	out := map[string]float64{}
	for _, rec := range recs {
		raw, ok := rec.Row[metric]
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			continue
		}
		out[key(rec)] = v
	}
	return out
}

// gateResult is the comparison outcome for one scenario.
type gateResult struct {
	key      string
	old, new float64
	regress  bool
}

// compare evaluates every scenario present on both sides.
func compare(oldRecs, newRecs []record, metric string, tolerance, slack float64) (results []gateResult, onlyOld, onlyNew []string) {
	oldV := metricValues(oldRecs, metric)
	newV := metricValues(newRecs, metric)
	for k, nv := range newV {
		ov, ok := oldV[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		results = append(results, gateResult{
			key: k, old: ov, new: nv,
			regress: nv > ov*(1+tolerance)+slack,
		})
	}
	for k := range oldV {
		if _, ok := newV[k]; !ok {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].key < results[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return results, onlyOld, onlyNew
}

// compareTime evaluates the wall-clock gate: a row regresses when its
// current value exceeds both the absolute floor (tiny rows are pure
// scheduler noise) and the relative allowance over the baseline.
func compareTime(oldRecs, newRecs []record, metric string, tolerance, floor float64) []gateResult {
	oldV := metricValues(oldRecs, metric)
	newV := metricValues(newRecs, metric)
	var results []gateResult
	for k, nv := range newV {
		ov, ok := oldV[k]
		if !ok {
			continue // unbaselined rows are the count gates' job to report
		}
		results = append(results, gateResult{
			key: k, old: ov, new: nv,
			regress: nv > floor && nv > ov*(1+tolerance),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].key < results[j].key })
	return results
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline lcabench -json file (required)")
		newPath   = flag.String("new", "", "current lcabench -json file (required)")
		metrics   = flag.String("metric", "mean probes", "comma-separated row columns to gate on")
		tolerance = flag.Float64("tolerance", 0.20, "relative regression allowance (0.20 = +20%)")
		slack     = flag.Float64("slack", 2, "absolute allowance added on top of the relative one")
		timeMet   = flag.String("time-metric", "", "wall-clock row column to gate on (empty disables the time gate)")
		timeTol   = flag.Float64("time-tolerance", 1.0, "relative allowance of the time gate (1.0 = +100%; CI runners are noisy)")
		timeFloor = flag.Float64("time-floor", 500, "absolute floor of the time gate: rows at or below it never fail")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	oldRecs, err := readFile(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRecs, err := readFile(*newPath)
	if err != nil {
		fatal(err)
	}
	bad, compared := 0, 0
	for _, metric := range strings.Split(*metrics, ",") {
		metric = strings.TrimSpace(metric)
		if metric == "" {
			continue
		}
		results, onlyOld, onlyNew := compare(oldRecs, newRecs, metric, *tolerance, *slack)
		compared += len(results)
		metricBad := 0
		for _, res := range results {
			if res.regress {
				metricBad++
				rel := ""
				if res.old > 0 {
					rel = fmt.Sprintf("+%.1f%%, ", 100*(res.new-res.old)/res.old)
				}
				fmt.Printf("REGRESSION %s: %s %.2f -> %.2f (%sgate %.0f%%+%.0f)\n",
					res.key, metric, res.old, res.new, rel, 100**tolerance, *slack)
			}
		}
		for _, k := range onlyNew {
			fmt.Printf("note: no %q baseline for %s (new benchmark, not gated)\n", metric, k)
		}
		for _, k := range onlyOld {
			fmt.Printf("note: baseline row %s missing %q in the current run\n", k, metric)
		}
		fmt.Printf("benchgate: %d scenarios compared on %q, %d regressions\n", len(results), metric, metricBad)
		bad += metricBad
	}
	if *timeMet != "" {
		results := compareTime(oldRecs, newRecs, *timeMet, *timeTol, *timeFloor)
		compared += len(results)
		timeBad := 0
		for _, res := range results {
			if res.regress {
				timeBad++
				rel := ""
				if res.old > 0 {
					rel = fmt.Sprintf("+%.1f%%, ", 100*(res.new-res.old)/res.old)
				}
				fmt.Printf("REGRESSION %s: %s %.2f -> %.2f (%stime gate %.0f%% above floor %.0f)\n",
					res.key, *timeMet, res.old, res.new, rel, 100**timeTol, *timeFloor)
			}
		}
		fmt.Printf("benchgate: %d scenarios compared on %q (time gate), %d regressions\n", len(results), *timeMet, timeBad)
		bad += timeBad
	}
	if compared == 0 {
		fmt.Println("benchgate: warning: nothing to compare (schema drift or empty inputs)")
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func readFile(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := parseRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
