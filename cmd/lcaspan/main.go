// Command lcaspan answers spanner edge queries over a graph file: the
// "illusion" interface of the LCA model. It never materializes the
// spanner; each query runs the local algorithm and reports the probe bill.
//
// Usage:
//
//	lcaspan -graph g.txt -alg 3 -query 12,345 -query 7,8
//	lcaspan -graph g.txt -alg 5 -all-incident 12
//	lcaspan -graph g.txt -alg k -k 3 -query 1,2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lca/internal/graph"
	"lca/internal/oracle"
	"lca/internal/rnd"
	"lca/internal/spanner"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ";") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

type edgeLCA interface {
	QueryEdge(u, v int) bool
	ProbeStats() oracle.Stats
}

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		alg       = flag.String("alg", "3", "spanner construction: 3, 5, k or sparse")
		k         = flag.Int("k", 3, "stretch parameter for -alg k")
		seed      = flag.Uint64("seed", 2019, "random seed (fixes the spanner)")
		incident  = flag.Int("all-incident", -1, "query every edge incident to this vertex")
	)
	var queries queryList
	flag.Var(&queries, "query", "edge query 'u,v' (repeatable)")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "lcaspan: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail(err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	o := oracle.NewCounter(oracle.New(g))
	var lca edgeLCA
	switch *alg {
	case "3":
		lca = spanner.NewSpanner3(o, rnd.Seed(*seed))
	case "5":
		lca = spanner.NewSpanner5(o, rnd.Seed(*seed))
	case "k":
		lca = spanner.NewSpannerK(o, *k, rnd.Seed(*seed))
	case "sparse":
		lca = spanner.NewSparseSpanning(o, rnd.Seed(*seed))
	default:
		fail(fmt.Errorf("unknown -alg %q", *alg))
	}

	type q struct{ u, v int }
	var qs []q
	for _, s := range queries {
		parts := strings.Split(s, ",")
		if len(parts) != 2 {
			fail(fmt.Errorf("bad -query %q, want 'u,v'", s))
		}
		u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			fail(fmt.Errorf("bad -query %q", s))
		}
		qs = append(qs, q{u, v})
	}
	if *incident >= 0 {
		if *incident >= g.N() {
			fail(fmt.Errorf("vertex %d out of range", *incident))
		}
		for i := 0; i < g.Degree(*incident); i++ {
			qs = append(qs, q{*incident, g.Neighbor(*incident, i)})
		}
	}
	if len(qs) == 0 {
		fmt.Fprintln(os.Stderr, "lcaspan: no queries (use -query or -all-incident)")
		os.Exit(2)
	}

	fmt.Printf("graph: n=%d m=%d maxdeg=%d | alg=%s seed=%d\n", g.N(), g.M(), g.MaxDegree(), *alg, *seed)
	kept := 0
	for _, e := range qs {
		if !g.HasEdge(e.u, e.v) {
			fmt.Printf("(%d,%d): not an edge of the input graph\n", e.u, e.v)
			continue
		}
		before := lca.ProbeStats()
		in := lca.QueryEdge(e.u, e.v)
		delta := lca.ProbeStats().Sub(before)
		verdict := "OUT"
		if in {
			verdict = "IN "
			kept++
		}
		fmt.Printf("(%6d,%6d): %s  probes=%d (nbr=%d deg=%d adj=%d)\n",
			e.u, e.v, verdict, delta.Total(), delta.Neighbor, delta.Degree, delta.Adjacency)
	}
	fmt.Printf("summary: %d/%d queried edges in the spanner; %d total probes for %d queries (graph has %d edges — never read in full)\n",
		kept, len(qs), lca.ProbeStats().Total(), len(qs), g.M())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lcaspan:", err)
	os.Exit(1)
}
